"""CGP string serialization and Verilog export."""

import os
import re

import numpy as np
import pytest

from repro.circuits.generators import (
    build_barrel_shifter,
    build_baugh_wooley_multiplier,
    build_borrow_ripple_subtractor,
    build_multiplier,
    build_restoring_divider,
    build_ripple_carry_adder,
)
from repro.circuits.simulator import truth_table
from repro.circuits.verilog import to_verilog
from repro.core import netlist_to_chromosome, params_for_netlist
from repro.core.serialization import (
    chromosome_from_string,
    chromosome_to_string,
)


@pytest.fixture(scope="module")
def chromosome4():
    net = build_baugh_wooley_multiplier(4)
    return netlist_to_chromosome(net, params_for_netlist(net, extra_columns=5))


# ----------------------------------------------------------------------
# Serialization
# ----------------------------------------------------------------------
def test_roundtrip_preserves_genome(chromosome4):
    text = chromosome_to_string(chromosome4)
    back = chromosome_from_string(text)
    assert np.array_equal(back.genes, chromosome4.genes)
    assert back.params == chromosome4.params


def test_roundtrip_preserves_function(chromosome4):
    back = chromosome_from_string(chromosome_to_string(chromosome4))
    assert np.array_equal(
        truth_table(back.to_netlist(), signed=True),
        truth_table(chromosome4.to_netlist(), signed=True),
    )


def test_string_is_single_line(chromosome4):
    text = chromosome_to_string(chromosome4)
    assert "\n" not in text
    assert text.startswith("{8,8,")  # two 4-bit operands, 8-bit product


def test_parse_rejects_missing_header():
    with pytest.raises(ValueError, match="header"):
        chromosome_from_string("([0,1,2])(0)")


def test_parse_rejects_wrong_node_count(chromosome4):
    text = chromosome_to_string(chromosome4)
    truncated = text.replace("[0,0,0]", "", 1)
    with pytest.raises(ValueError):
        chromosome_from_string(truncated)


def test_parse_rejects_illegal_source():
    # Node 0 reading signal 5 (not yet defined).
    text = "{2,1,1,1,2,*,AND|OR}([5,0,0])(2)"
    with pytest.raises(ValueError, match="illegal source"):
        chromosome_from_string(text)


def test_parse_rejects_bad_function_index():
    text = "{2,1,1,1,2,*,AND|OR}([0,1,9])(2)"
    with pytest.raises(ValueError, match="function index"):
        chromosome_from_string(text)


def test_parse_levels_back_roundtrip():
    from repro.core import CGPParams
    from repro.core.seeding import random_chromosome

    p = CGPParams(
        num_inputs=3, num_outputs=2, columns=8, levels_back=3,
        functions=("AND", "OR", "NOT", "BUF"),
    )
    ch = random_chromosome(p, np.random.default_rng(0))
    back = chromosome_from_string(chromosome_to_string(ch))
    assert back.params.levels_back == 3
    assert np.array_equal(back.genes, ch.genes)


# ----------------------------------------------------------------------
# Verilog
# ----------------------------------------------------------------------
def test_verilog_structure():
    net = build_ripple_carry_adder(2)
    text = to_verilog(net, module_name="rca2")
    assert text.startswith("module rca2 (")
    assert text.rstrip().endswith("endmodule")
    assert "input  wire in_0, in_1, in_2, in_3" in text
    assert "assign out_2" in text  # carry out


def test_verilog_covers_active_gates_only():
    from repro.circuits.netlist import Netlist

    net = Netlist(num_inputs=2)
    live = net.add_gate("XOR", 0, 1)
    dead = net.add_gate("NOR", 0, 1)
    net.set_outputs([live])
    text = to_verilog(net)
    assert f"w{live}" in text
    assert f"w{dead}" not in text


def test_verilog_constants_and_unary():
    from repro.circuits.netlist import Netlist

    net = Netlist(num_inputs=1)
    one = net.add_gate("CONST1")
    inv = net.add_gate("NOT", 0)
    net.set_outputs([one, inv])
    text = to_verilog(net)
    assert "1'b1" in text
    assert "~in_0" in text


def test_verilog_output_wired_to_input():
    from repro.circuits.netlist import Netlist

    net = Netlist(num_inputs=2)
    net.set_outputs([1])
    text = to_verilog(net)
    assert "assign out_0 = in_1;" in text


def test_roundtrip_random_chromosomes_property(rng):
    """String round-trip is exact for arbitrary valid chromosomes."""
    from repro.core import CGPParams
    from repro.core.seeding import random_chromosome

    for _ in range(25):
        p = CGPParams(
            num_inputs=int(rng.integers(2, 6)),
            num_outputs=int(rng.integers(1, 5)),
            columns=int(rng.integers(1, 12)),
            rows=int(rng.integers(1, 3)),
            levels_back=(
                None if rng.integers(0, 2) else int(rng.integers(1, 4))
            ),
            functions=("AND", "OR", "XOR", "NAND", "NOT", "CONST0"),
        )
        ch = random_chromosome(p, rng)
        back = chromosome_from_string(chromosome_to_string(ch))
        assert back.params == ch.params
        assert np.array_equal(back.genes, ch.genes)


def _assert_matches_golden(netlist, stem):
    golden = os.path.join(os.path.dirname(__file__), "golden", f"{stem}.v")
    assert to_verilog(netlist, module_name=stem) == open(golden).read()


def test_verilog_golden_seed_multiplier():
    """The export the library ships through, pinned against a golden file."""
    _assert_matches_golden(
        build_multiplier(2, signed=False), "multiplier2_seed"
    )


@pytest.mark.parametrize("builder,stem", [
    (build_restoring_divider, "divider2_seed"),
    (build_borrow_ripple_subtractor, "subtractor2_seed"),
    (build_barrel_shifter, "barrel_shifter2_seed"),
])
def test_verilog_golden_new_seed_generators(builder, stem):
    """Each catalog-expansion seed generator is pinned like the
    multiplier: any structural change to the emitted RTL is a diff."""
    _assert_matches_golden(builder(2), stem)


_IDENT_RE = re.compile(r"\b(?:in_\d+|w\d+)\b")


def _check_verilog_wellformed(net, text):
    """Every wire is an active-cone signal; every reference is declared."""
    active = net.active_signals()
    declared = {f"in_{k}" for k in range(net.num_inputs)}
    emitted_wires = set()
    assignments = 0
    for line in text.splitlines():
        line = line.strip().rstrip(";")
        if line.startswith("wire "):
            name, expr = line[5:].split(" = ", 1)
            name = name.strip()
            for ref in _IDENT_RE.findall(expr):
                assert ref in declared, f"{ref} used before declaration"
            assert name not in declared, f"{name} declared twice"
            declared.add(name)
            emitted_wires.add(int(name[1:]))
        elif line.startswith("assign "):
            _, expr = line[7:].split(" = ", 1)
            for ref in _IDENT_RE.findall(expr):
                assert ref in declared, f"output reads undeclared {ref}"
            assignments += 1
    # Emitted wires are exactly the active gate outputs (inactive gates
    # must not leak into the artifact), and every output is assigned.
    assert emitted_wires == {
        net.gate_signal(k) for k in net.active_gate_indices()
    }
    assert emitted_wires <= active
    assert assignments == net.num_outputs


def test_verilog_wellformed_property(rng):
    """Random phenotypes (mostly inactive nodes) export well-formed RTL."""
    from repro.core import CGPParams
    from repro.core.seeding import random_chromosome

    functions = (
        "AND", "OR", "XOR", "NAND", "NOR", "XNOR", "NOT", "BUF",
        "CONST0", "CONST1",
    )
    for _ in range(25):
        p = CGPParams(
            num_inputs=int(rng.integers(2, 6)),
            num_outputs=int(rng.integers(1, 5)),
            columns=int(rng.integers(1, 15)),
            rows=1,
            functions=functions,
        )
        net = random_chromosome(p, rng).to_netlist()
        _check_verilog_wellformed(net, to_verilog(net))


def test_verilog_wellformed_seed_circuits():
    for net in (
        build_multiplier(3, signed=False),
        build_baugh_wooley_multiplier(3),
        build_ripple_carry_adder(4),
    ):
        _check_verilog_wellformed(net, to_verilog(net))


@pytest.mark.parametrize("builder", [
    build_restoring_divider,
    build_borrow_ripple_subtractor,
    build_barrel_shifter,
])
@pytest.mark.parametrize("width", [1, 2, 3, 5, 8])
def test_verilog_wellformed_new_seed_circuits(builder, width):
    """Active-cone wires only, declare-before-use, across widths —
    including the barrel shifter, whose high shift-amount inputs sit
    entirely outside the output cone."""
    net = builder(width)
    _check_verilog_wellformed(net, to_verilog(net))


def test_verilog_semantics_by_reference_eval():
    """Evaluate the emitted expressions in Python and compare truth tables."""
    net = build_baugh_wooley_multiplier(2)
    text = to_verilog(net, module_name="m")
    # Translate Verilog operators into Python bitwise ops on 0/1 ints.
    lines = [
        l.strip() for l in text.splitlines() if l.strip().startswith(("wire", "assign"))
    ]
    tt = truth_table(net, signed=True)
    for vector in range(16):
        env = {f"in_{k}": (vector >> k) & 1 for k in range(4)}
        for line in lines:
            line = line.rstrip(";")
            if line.startswith("wire "):
                name, expr = line[5:].split(" = ", 1)
            else:
                name, expr = line[7:].split(" = ", 1)
            expr = expr.replace("1'b0", "0").replace("1'b1", "1")
            expr = expr.replace("~", "1^")
            env[name.strip()] = eval(expr, {}, env) & 1
        value = sum(env[f"out_{j}"] << j for j in range(4))
        if value >= 8:
            value -= 16
        assert value == tt[vector]
