"""Documentation is part of tier-1: fences and the API reference.

The heavy lifting lives in ``docs/check_docs.py`` (also run as a
standalone CI step); these tests pull the same checks into the default
test run so docs drift fails locally, before a push.
"""

import importlib.util
import os

import pytest

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_docs", os.path.join(REPO, "docs", "check_docs.py")
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def checker():
    return _load_checker()


def test_required_docs_exist():
    for name in ("ARCHITECTURE.md", "serving.md", "api.md"):
        assert os.path.exists(os.path.join(REPO, "docs", name)), name


def test_all_fences_match_implementation(checker, capsys):
    assert checker.main([]) == 0
    assert "fences match" in capsys.readouterr().out


def test_api_reference_matches_route_table():
    """docs/api.md == the Markdown rendered from the live route table."""
    from repro.serve.openapi import generate_markdown

    with open(os.path.join(REPO, "docs", "api.md")) as fh:
        committed = fh.read()
    assert committed == generate_markdown(), (
        "docs/api.md is out of date; regenerate with "
        "`python -m repro.serve.openapi --markdown --out docs/api.md`"
    )


def test_checker_catches_drift(checker, tmp_path):
    """The gate itself must fail on the failure modes it exists for."""
    errors = []
    checker.check_python(
        "from repro.library import no_such_name\n", "x.md:1", errors
    )
    assert any("no attribute 'no_such_name'" in e for e in errors)

    errors = []
    checker.check_bash(
        "python -m repro.cli library query --db x --no-such-flag 1\n",
        "x.md:1", errors,
    )
    assert any("does not parse" in e for e in errors)

    errors = []
    checker.check_bash(
        "curl -s 'http://localhost:8080/v1/bogus?width=3'\n", "x.md:1", errors
    )
    assert any("matches no serve route" in e for e in errors)

    errors = []
    checker.check_bash(
        "curl -s 'http://localhost:8080/v1/best?no_such_param=1'\n",
        "x.md:1", errors,
    )
    assert any("not declared" in e for e in errors)

    errors = []
    checker.check_bash("python scripts/gone_forever.py\n", "x.md:1", errors)
    assert any("does not exist" in e for e in errors)

    errors = []
    checker.check_json("{not json}", "x.md:1", errors)
    assert any("not valid JSON" in e for e in errors)

    # Multi-line continuation + env prefix + placeholder parse cleanly.
    errors = []
    checker.check_bash(
        "PYTHONPATH=src python -m repro.cli library show \\\n"
        "    --db designs.sqlite <design-id>\n",
        "x.md:1", errors,
    )
    assert errors == []
