"""The component-agnostic objective layer (core + engine + metrics).

The layer's contract mirrors the engine's: one objective API for every
component (multiplier, adder, MAC, arbitrary netlist) and every error
metric, with the compiled engine producing *bit-identical* results to
the interpreted path.  Most tests here are equivalence properties over
random candidates, plus the component registry's closed-form references
against simulation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits.simulator import truth_table
from repro.core import (
    CircuitFitness,
    CircuitObjective,
    EvolutionConfig,
    MultiplierFitness,
    adder_objective,
    component_objective,
    evolve,
    get_component,
    infer_component,
    mac_objective,
    multiplier_objective,
    netlist_objective,
    netlist_to_chromosome,
    params_for_netlist,
)
from repro.core.components import COMPONENTS
from repro.core.mutation import mutate
from repro.engine import CompiledObjective, native_available
from repro.errors import (
    get_metric,
    mean_error_distance,
    metric_names,
    operand_weights,
    uniform,
    vector_weights,
    worst_case_error,
)
from repro.errors.distributions import discretized_half_normal

BACKENDS = ["numpy"] + (["native"] if native_available() else [])

#: (component, width, signed) cases small enough for exhaustive tests.
CASES = [
    ("multiplier", 4, True),
    ("multiplier", 4, False),
    ("adder", 4, False),
    ("mac", 2, True),
    ("mac", 2, False),
    ("divider", 3, False),
    ("subtractor", 3, False),
    ("barrel-shifter", 3, False),
]

#: The PR-5 catalog expansion: unsigned two-operand components.
NEW_COMPONENTS = ("divider", "subtractor", "barrel-shifter")


def _seed_chromosome(component: str, width: int, signed: bool, extra: int = 8):
    comp = get_component(component)
    net = comp.build_seed(width, comp.resolve_signed(signed))
    return netlist_to_chromosome(net, params_for_netlist(net, extra_columns=extra))


def _dist(width: int, signed: bool):
    return discretized_half_normal(width, sigma=max(2.0, (1 << width) / 4),
                                   signed=signed, name="Dh")


# ----------------------------------------------------------------------
# Component registry
# ----------------------------------------------------------------------
@pytest.mark.parametrize("component,width,signed", CASES)
def test_closed_form_reference_matches_simulated_seed(component, width, signed):
    """Property: every component's reference == its exact seed circuit."""
    comp = get_component(component)
    signed = comp.resolve_signed(signed)
    ref = comp.reference(width, signed)
    sim = truth_table(comp.build_seed(width, signed), signed=signed)
    assert np.array_equal(ref, sim)


def test_infer_component_round_trips_interface_shapes():
    for name, width in [("multiplier", 4), ("multiplier", 8),
                        ("adder", 4), ("adder", 8), ("mac", 2), ("mac", 3),
                        ("divider", 4), ("subtractor", 4),
                        ("barrel-shifter", 6)]:
        comp = get_component(name)
        got = infer_component(comp.num_inputs(width), comp.num_outputs(width))
        assert any(m.name == name and w == width for m, w in got)
        # The inferred width is consistent across every candidate.
        assert {w for _, w in got} == {width}
    assert infer_component(7, 13) == ()


def test_infer_component_reports_all_shape_collisions():
    """Colliding interface shapes return every candidate, honestly."""
    # 2w -> w+1: adder and subtractor.
    assert [m.name for m, _ in infer_component(8, 5)] == \
        ["adder", "subtractor"]
    # 2w -> w: divider and barrel shifter.
    assert [m.name for m, _ in infer_component(8, 4)] == \
        ["divider", "barrel-shifter"]
    # The degenerate 2 -> 2 shape fits three 1-bit components.
    assert [m.name for m, _ in infer_component(2, 2)] == \
        ["multiplier", "adder", "subtractor"]
    # Unique shapes still come back as exactly one candidate.
    assert [m.name for m, _ in infer_component(8, 8)] == ["multiplier"]
    assert [m.name for m, _ in infer_component(9, 5)] == ["mac"]


def test_component_width_guards():
    with pytest.raises(ValueError):
        get_component("mac").check_width(8)  # 2**33 vectors: rejected
    with pytest.raises(ValueError):
        get_component("multiplier").check_width(0)
    with pytest.raises(ValueError):
        get_component("bogus")


def test_adder_component_is_unsigned():
    assert not get_component("adder").supports_signed
    with pytest.raises(ValueError):
        adder_objective(4, uniform(4, signed=True))


def test_new_components_are_unsigned():
    for name in NEW_COMPONENTS:
        assert not get_component(name).supports_signed
        with pytest.raises(ValueError, match="unsigned"):
            component_objective(name, 4, uniform(4, signed=True))
        with pytest.raises(ValueError, match="width"):
            component_objective(name, 4, uniform(3))


@pytest.mark.parametrize("component", NEW_COMPONENTS)
@pytest.mark.parametrize("width", range(2, 9))
def test_new_component_references_match_seeds_widths_2_to_8(
    component, width
):
    """Property: closed-form reference == exact seed, widths 2-8."""
    comp = get_component(component)
    ref = comp.reference(width, False)
    sim = truth_table(comp.build_seed(width, False), signed=False)
    assert np.array_equal(ref, sim)


def test_divider_reference_zero_convention():
    """x / 0 = all-ones for every x (including 0 / 0), by definition."""
    for width in (2, 4):
        ref = get_component("divider").reference(width, False)
        # Vectors with y == 0 are the first 2**width entries.
        assert (ref[: 1 << width] == (1 << width) - 1).all()
        # Everything else is plain floor division.
        v = np.arange(1 << (2 * width), dtype=np.int64)
        x, y = v & ((1 << width) - 1), v >> width
        nz = y > 0
        assert np.array_equal(ref[nz], x[nz] // y[nz])


def test_subtractor_reference_wraps_twos_complement():
    ref = get_component("subtractor").reference(3, False)
    v = np.arange(64, dtype=np.int64)
    x, y = v & 7, v >> 3
    assert np.array_equal(ref, (x - y) & 15)
    # The borrow-out doubles as the sign bit of the wrapped encoding.
    assert (ref[(x < y)] >= 8).all() and (ref[(x >= y)] < 8).all()


def test_barrel_shifter_reference_uses_low_shift_bits():
    from repro.circuits.generators import shift_amount_bits

    assert [shift_amount_bits(w) for w in (1, 2, 3, 4, 5, 8)] == \
        [1, 1, 2, 2, 3, 3]
    ref = get_component("barrel-shifter").reference(4, False)
    v = np.arange(256, dtype=np.int64)
    x, y = v & 15, v >> 4
    assert np.array_equal(ref, (x << (y & 3)) & 15)


def test_operand_weights_generalizes_vector_weights():
    d = _dist(3, False)
    assert np.array_equal(operand_weights(d, 6), vector_weights(d, 3))
    w = operand_weights(d, 8)  # e.g. a 3-bit MAC x operand in 8 inputs
    assert w.shape == (256,)
    assert w[:8] == pytest.approx(d.pmf)
    with pytest.raises(ValueError):
        operand_weights(d, 2)


# ----------------------------------------------------------------------
# Metric registry
# ----------------------------------------------------------------------
def test_metric_registry_names_and_aliases():
    assert set(metric_names()) == {
        "wmed", "med", "mred", "error-rate", "worst-case"
    }
    assert get_metric("mre").name == "mred"
    assert get_metric("er").name == "error-rate"
    assert get_metric("WCE").name == "worst-case"
    assert get_metric(get_metric("wmed")) is get_metric("wmed")
    with pytest.raises(ValueError):
        get_metric("psnr")


def test_metric_values_have_expected_semantics(rng):
    """Each metric on a mutated adder matches its table-level definition."""
    chrom = _seed_chromosome("adder", 4, False)
    for _ in range(40):
        chrom, _ = mutate(chrom, 6, rng)
    base = adder_objective(4, uniform(4))
    table = base.truth_table(chrom)
    ref = base.reference
    w = base.weights
    err = np.abs(ref - table)
    assert base.error(chrom) == pytest.approx(
        mean_error_distance(ref, table, w) / base.normalizer
    )
    med = component_objective("adder", 4, uniform(4), metric="med")
    assert med.error(chrom) == pytest.approx(
        err.mean() / base.normalizer
    )
    er = component_objective("adder", 4, uniform(4), metric="error-rate")
    assert er.error(chrom) == pytest.approx(float(np.dot(w, err != 0)))
    wce = component_objective("adder", 4, uniform(4), metric="worst-case")
    assert wce.error(chrom) == pytest.approx(
        worst_case_error(ref, table) / base.normalizer
    )
    mred = component_objective("adder", 4, uniform(4), metric="mred")
    rel = err / np.maximum(np.abs(ref), 1.0)
    assert mred.error(chrom) == pytest.approx(float(np.dot(w, rel)))


# ----------------------------------------------------------------------
# Compiled engine == interpreted path, bit-for-bit, all metrics/components
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("component,width,signed", CASES)
def test_every_metric_compiled_matches_interpreted_bitwise(
    rng, backend, component, width, signed
):
    """Property: engine == interpreted for random candidates, float ==."""
    signed = get_component(component).resolve_signed(signed)
    chrom = _seed_chromosome(component, width, signed)
    dist = _dist(width, signed)
    for metric in metric_names():
        base = component_objective(component, width, dist, metric=metric)
        eng = CompiledObjective(
            component_objective(component, width, dist, metric=metric),
            backend=backend,
        )
        assert eng.backend == backend
        c = chrom
        for _ in range(12):
            c, _ = mutate(c, 5, rng)
            rb = base.evaluate(c, 0.02)
            re = eng.evaluate(c, 0.02)
            assert rb.wmed == re.wmed  # bit-exact, not approx
            assert rb.area == re.area
            assert rb.fitness == re.fitness
        assert np.array_equal(eng.truth_table(c), base.truth_table(c))


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("component", NEW_COMPONENTS)
def test_new_components_bit_identical_across_widths_2_to_8(
    rng, backend, component
):
    """Property: engine == interpreted for divider / subtractor /
    barrel shifter at every width 2-8 and every registered metric.

    The catalog-expansion acceptance: new ``ComponentSpec``s plug into
    the compiled engine with zero engine changes, and both backends
    (the native kernel and the ``REPRO_ENGINE=numpy`` fallback, which
    is what ``backend="numpy"`` forces) reproduce the interpreted
    evaluation float-for-float.
    """
    for width in range(2, 9):
        chrom = _seed_chromosome(component, width, False, extra=6)
        dist = _dist(width, False)
        for metric in metric_names():
            base = component_objective(component, width, dist, metric=metric)
            eng = CompiledObjective(
                component_objective(component, width, dist, metric=metric),
                backend=backend,
            )
            c = chrom
            for _ in range(3):
                c, _ = mutate(c, 5, rng)
                rb = base.evaluate(c, 0.05)
                re = eng.evaluate(c, 0.05)
                assert rb.wmed == re.wmed  # bit-exact, not approx
                assert rb.area == re.area
                assert rb.fitness == re.fitness
            assert np.array_equal(eng.truth_table(c), base.truth_table(c))


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize(
    "component,width,signed", [("adder", 8, False), ("mac", 2, True)]
)
def test_evolve_trajectory_identical_through_engine(
    backend, component, width, signed
):
    """8-bit adder and MAC objectives evolve bit-identically compiled."""
    dist = _dist(width, signed)
    comp = get_component(component)
    net = comp.build_seed(width, comp.resolve_signed(signed))
    seed = netlist_to_chromosome(net, params_for_netlist(net, extra_columns=6))
    cfg = EvolutionConfig(generations=60, history_every=1)
    runs = {}
    for name, ev in (
        ("base", component_objective(component, width, dist)),
        ("engine", CompiledObjective(
            component_objective(component, width, dist), backend=backend
        )),
    ):
        runs[name] = evolve(
            seed, ev, threshold=0.01, config=cfg,
            rng=np.random.default_rng(99),
        )
    assert runs["base"].history == runs["engine"].history
    assert runs["base"].best_eval == runs["engine"].best_eval
    assert np.array_equal(runs["base"].best.genes, runs["engine"].best.genes)


def test_compiled_objective_rejects_non_objective():
    with pytest.raises(TypeError):
        CompiledObjective("not an objective")


def test_compiled_objective_rejects_mismatched_inputs():
    chrom = _seed_chromosome("adder", 4, False)
    eng = CompiledObjective(adder_objective(8, uniform(8)))
    with pytest.raises(ValueError):
        eng.evaluate(chrom, 0.1)


def test_cache_key_distinguishes_objectives(rng):
    """Same phenotype, different objective -> different cache signature."""
    chrom = _seed_chromosome("adder", 4, False)
    evaluators = [
        CompiledObjective(adder_objective(4, uniform(4), metric=m))
        for m in ("wmed", "med")
    ] + [CompiledObjective(adder_objective(4, _dist(4, False)))]
    sigs = set()
    for eng in evaluators:
        rt = eng._runtime(chrom.params)
        if rt is None:  # pragma: no cover - engine unavailable
            pytest.skip("engine runtime unavailable")
        n_ops = rt.compile(chrom.genes)
        sigs.add(rt.signature(n_ops))
    assert len(sigs) == len(evaluators)


def test_wide_reference_falls_back_to_interpreted(rng):
    """References beyond int32 decode range use the interpreted path."""
    chrom = _seed_chromosome("adder", 4, False)
    ref = adder_objective(4, uniform(4)).reference + (1 << 40)
    base = CircuitObjective(8, ref, signed=False)
    eng = CompiledObjective(CircuitObjective(8, ref, signed=False))
    assert eng._runtime(chrom.params) is None
    for _ in range(5):
        chrom, _ = mutate(chrom, 4, rng)
        assert eng.evaluate(chrom, 0.5) == base.evaluate(chrom, 0.5)


# ----------------------------------------------------------------------
# Objective construction and compatibility aliases
# ----------------------------------------------------------------------
def test_multiplier_objective_is_legacy_fitness():
    obj = multiplier_objective(4, uniform(4, signed=True))
    assert isinstance(obj, MultiplierFitness)
    assert isinstance(obj, CircuitObjective)
    assert obj.component == "multiplier"
    assert np.array_equal(obj.exact, obj.reference)


def test_make_evaluator_engine_path_keeps_legacy_identity():
    """make_evaluator's engine path still returns a MultiplierFitness."""
    from repro.analysis import make_evaluator

    ev = make_evaluator(4, uniform(4, signed=True))
    assert isinstance(ev, MultiplierFitness)
    assert np.array_equal(ev.exact, ev.reference)  # legacy accessor
    assert hasattr(ev, "evaluate_batch")


def test_netlist_objective_rejects_signedness_mismatch():
    net = get_component("adder").build_seed(4, False)
    with pytest.raises(ValueError, match="signedness"):
        netlist_objective(net, dist=uniform(4, signed=True), signed=False)


def test_circuit_fitness_is_objective_without_type_ignore():
    fit = CircuitFitness(8, np.zeros(256))
    assert isinstance(fit, CircuitObjective)
    # The shared hot path is inherited, not delegated via casts.
    assert CircuitFitness.truth_table is CircuitObjective.truth_table
    assert CircuitFitness.area is CircuitObjective.area


def test_netlist_objective_matches_component_objective(rng):
    comp = get_component("adder")
    net = comp.build_seed(4, False)
    dist = _dist(4, False)
    a = adder_objective(4, dist)
    b = netlist_objective(net, dist=dist, normalizer=a.normalizer)
    chrom = _seed_chromosome("adder", 4, False)
    for _ in range(8):
        chrom, _ = mutate(chrom, 4, rng)
        assert a.evaluate(chrom, 0.05) == b.evaluate(chrom, 0.05)


def test_eval_result_error_alias():
    obj = adder_objective(3, uniform(3))
    chrom = _seed_chromosome("adder", 3, False)
    res = obj.evaluate(chrom, 0.0)
    assert res.error == res.wmed == 0.0
    assert res.feasible()


def test_mac_objective_weights_follow_x_operand():
    dist = _dist(2, False)
    obj = mac_objective(2, dist)
    comp = COMPONENTS["mac"]
    ni = comp.num_inputs(2)
    assert obj.num_inputs == ni
    w = obj.weights * (1 << (ni - 2))  # undo tiling normalization
    assert w[:4] == pytest.approx(dist.pmf)


# ----------------------------------------------------------------------
# Sweep-layer signedness guards (fail fast, never clamp silently)
# ----------------------------------------------------------------------
def test_sweeps_reject_signed_dist_for_unsigned_component():
    from repro.analysis import characterize_design, grid_front, parallel_front

    signed_dist = uniform(4, signed=True)
    net = get_component("adder").build_seed(4, False)
    with pytest.raises(ValueError, match="unsigned"):
        characterize_design(net, 4, [signed_dist], component="adder")
    # Before any cell runs, not mid-sweep in a worker:
    with pytest.raises(ValueError, match="unsigned"):
        grid_front(4, signed_dist, [1.0], [signed_dist],
                   components=("multiplier", "adder"), max_workers=1)
    with pytest.raises(ValueError, match="unsigned"):
        parallel_front(None, 4, signed_dist, [1.0], [signed_dist],
                       component="adder", max_workers=1)


def test_grid_front_empty_thresholds():
    from repro.analysis import grid_front

    assert grid_front(3, uniform(3), [], [uniform(3)], max_workers=1) == {
        ("multiplier", "wmed"): []
    }


def test_sweeps_fail_fast_on_oversized_width():
    """Width guards fire before any grid cell runs, not in a worker."""
    from repro.analysis import grid_front, parallel_front

    du = uniform(6)
    with pytest.raises(ValueError, match="width must be <= 5"):
        grid_front(6, du, [1.0], [du],
                   components=("multiplier", "mac"), max_workers=1)
    with pytest.raises(ValueError, match="width must be <= 5"):
        parallel_front(None, 6, du, [1.0], [du],
                       component="mac", max_workers=1)


def test_characterize_design_rejects_width_mismatch():
    from repro.analysis import characterize_design

    net = get_component("adder").build_seed(4, False)
    with pytest.raises(ValueError, match="width"):
        characterize_design(net, 4, [uniform(2)], component="adder")
    with pytest.raises(ValueError, match="width"):
        characterize_design(net, 4, [uniform(4)], component="adder",
                            activity_dist=uniform(2))


# ----------------------------------------------------------------------
# Portable popcount path (REPRO_POPCOUNT)
# ----------------------------------------------------------------------
def test_portable_popcount_bit_identical(rng, monkeypatch):
    from repro.circuits import simulator

    words = rng.integers(0, 1 << 63, size=64, dtype=np.uint64)
    for nv in (1, 63, 64, 1000, 64 * 64):
        fast = simulator.popcount(words, nv)
        monkeypatch.setattr(simulator, "_HAS_BITWISE_COUNT", False)
        assert simulator.popcount(words, nv) == fast
        monkeypatch.undo()


def test_popcount_env_override(monkeypatch):
    from repro.circuits import simulator

    monkeypatch.setenv("REPRO_POPCOUNT", "portable")
    assert simulator._use_bitwise_count() is False
    monkeypatch.delenv("REPRO_POPCOUNT")
    assert simulator._use_bitwise_count() == hasattr(np, "bitwise_count")
