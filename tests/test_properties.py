"""Cross-cutting property-based tests (hypothesis) on core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.compose import append_netlist
from repro.circuits.gates import FULL_FUNCTION_SET
from repro.circuits.netlist import Netlist
from repro.circuits.simulator import truth_table
from repro.core import CGPParams, Chromosome, netlist_to_chromosome
from repro.core.mutation import mutate
from repro.errors import (
    error_distances,
    exact_product_table,
    from_pmf,
    mean_error_distance,
    table_as_matrix,
    wmed,
)
from repro.nn.quantization import quantize_array


# ----------------------------------------------------------------------
# Random netlist strategy
# ----------------------------------------------------------------------
@st.composite
def random_netlists(draw, max_inputs=5, max_gates=12):
    ni = draw(st.integers(min_value=1, max_value=max_inputs))
    net = Netlist(num_inputs=ni)
    n_gates = draw(st.integers(min_value=1, max_value=max_gates))
    for _ in range(n_gates):
        fn = draw(st.sampled_from(FULL_FUNCTION_SET))
        a = draw(st.integers(min_value=0, max_value=net.num_signals - 1))
        b = draw(st.integers(min_value=0, max_value=net.num_signals - 1))
        net.add_gate(fn, a, b)
    n_out = draw(st.integers(min_value=1, max_value=3))
    outs = [
        draw(st.integers(min_value=0, max_value=net.num_signals - 1))
        for _ in range(n_out)
    ]
    net.set_outputs(outs)
    return net


@given(random_netlists())
@settings(max_examples=40, deadline=None)
def test_pruning_preserves_truth_table(net):
    pruned = net.pruned()
    assert np.array_equal(truth_table(net), truth_table(pruned))
    assert len(pruned.gates) <= len(net.gates)
    pruned.validate()


@given(random_netlists())
@settings(max_examples=30, deadline=None)
def test_composition_identity(net):
    """Appending into a fresh wrapper with identity wiring is a no-op."""
    outer = Netlist(num_inputs=net.num_inputs)
    outs = append_netlist(outer, net, list(range(net.num_inputs)))
    outer.set_outputs(outs)
    assert np.array_equal(truth_table(outer), truth_table(net))


def _seed_full(net):
    from repro.core.seeding import params_for_netlist

    return netlist_to_chromosome(
        net, params_for_netlist(net, functions=FULL_FUNCTION_SET)
    )


@given(random_netlists())
@settings(max_examples=30, deadline=None)
def test_seeded_chromosome_equivalence(net):
    """Any valid netlist survives the netlist -> CGP -> netlist roundtrip."""
    ch = _seed_full(net)
    assert np.array_equal(truth_table(ch.to_netlist()), truth_table(net))


@given(random_netlists(), st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=30, deadline=None)
def test_mutation_chain_always_valid(net, seed):
    rng = np.random.default_rng(seed)
    ch = _seed_full(net)
    for _ in range(30):
        ch, _changed = mutate(ch, 4, rng)
    decoded = ch.to_netlist()
    decoded.validate()
    # Output count is an invariant of the genotype.
    assert decoded.num_outputs == net.num_outputs


# ----------------------------------------------------------------------
# Metric properties
# ----------------------------------------------------------------------
tables = st.lists(
    st.integers(min_value=-300, max_value=300), min_size=4, max_size=64
)


@given(tables, tables)
@settings(max_examples=60, deadline=None)
def test_med_symmetry(a, b):
    n = min(len(a), len(b))
    x, y = np.array(a[:n]), np.array(b[:n])
    assert mean_error_distance(x, y) == pytest.approx(mean_error_distance(y, x))


@given(tables, tables, tables)
@settings(max_examples=60, deadline=None)
def test_med_triangle_inequality(a, b, c):
    n = min(len(a), len(b), len(c))
    x, y, z = (np.array(v[:n]) for v in (a, b, c))
    lhs = mean_error_distance(x, z)
    rhs = mean_error_distance(x, y) + mean_error_distance(y, z)
    assert lhs <= rhs + 1e-9


@given(st.integers(min_value=2, max_value=5), st.data())
@settings(max_examples=30, deadline=None)
def test_wmed_convexity_in_distribution(width, data):
    """WMED under a mixture of PMFs is the mixture of WMEDs."""
    n = 1 << width
    exact = exact_product_table(width, signed=False)
    rng = np.random.default_rng(data.draw(st.integers(0, 2**31)))
    approx = exact + rng.integers(-4, 5, size=exact.shape)
    pmf_a = rng.random(n) + 1e-9
    pmf_b = rng.random(n) + 1e-9
    lam = data.draw(st.floats(min_value=0.0, max_value=1.0))
    da = from_pmf(pmf_a, width)
    db = from_pmf(pmf_b, width)
    mix = from_pmf(
        lam * pmf_a / pmf_a.sum() + (1 - lam) * pmf_b / pmf_b.sum(), width
    )
    expected = lam * wmed(exact, approx, da) + (1 - lam) * wmed(exact, approx, db)
    assert wmed(exact, approx, mix) == pytest.approx(expected)


@given(st.integers(min_value=2, max_value=5))
@settings(max_examples=10, deadline=None)
def test_table_matrix_roundtrip(width):
    n = 1 << width
    table = np.arange(n * n)
    mat = table_as_matrix(table, width)
    x = np.tile(np.arange(n), n)
    y = np.repeat(np.arange(n), n)
    assert np.array_equal(mat[x, y], table)


@given(
    st.lists(st.floats(-10, 10, allow_nan=False), min_size=1, max_size=40),
    st.floats(min_value=1e-3, max_value=2.0),
)
@settings(max_examples=50, deadline=None)
def test_quantize_monotone(values, scale):
    """Quantization preserves (non-strict) ordering."""
    arr = np.array(values)
    codes = quantize_array(arr, scale)
    order = np.argsort(arr, kind="stable")
    sorted_codes = codes[order]
    assert np.all(np.diff(sorted_codes) >= 0)


@given(tables)
@settings(max_examples=40, deadline=None)
def test_error_distance_zero_iff_equal(a):
    x = np.array(a)
    assert error_distances(x, x).max() == 0
    if x.size:
        y = x.copy()
        y[0] += 1
        assert error_distances(x, y).max() == 1
