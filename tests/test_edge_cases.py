"""Edge cases and failure injection across modules."""

import numpy as np
import pytest

from repro.analysis import mac_summary
from repro.baselines import build_truncated_multiplier
from repro.circuits.generators import build_baugh_wooley_multiplier
from repro.circuits.netlist import Netlist
from repro.circuits.simulator import (
    exhaustive_inputs,
    pack_bits,
    pack_input_vectors,
    simulate,
    unpack_bits,
)
from repro.core import (
    CGPParams,
    EvolutionConfig,
    MultiplierFitness,
    evolve,
    netlist_to_chromosome,
)
from repro.errors import uniform
from repro.nn import QuantizedModel, build_mlp, lut_matmul
from repro.nn.approx_layers import _GATHER_CHUNK_ELEMENTS


# ----------------------------------------------------------------------
# Simulator edges
# ----------------------------------------------------------------------
def test_pack_bits_empty():
    packed = pack_bits(np.zeros(0, dtype=np.uint8))
    assert packed.shape == (0,)
    assert unpack_bits(packed, 0).shape == (0,)


def test_pack_bits_exactly_64():
    bits = np.ones(64, dtype=np.uint8)
    packed = pack_bits(bits)
    assert packed.shape == (1,)
    assert packed[0] == np.uint64(0xFFFFFFFFFFFFFFFF)


def test_pack_bits_65_spills_word():
    bits = np.zeros(65, dtype=np.uint8)
    bits[64] = 1
    packed = pack_bits(bits)
    assert packed.shape == (2,)
    assert packed[1] == 1


def test_pack_input_vectors_large_values():
    vecs = np.array([2**20 - 1], dtype=np.uint64)
    stim = pack_input_vectors(vecs, 21)
    assert list(unpack_bits(stim[20], 1)) == [0]
    assert list(unpack_bits(stim[19], 1)) == [1]


def test_simulate_chain_of_nots_depth():
    """A deep inverter chain exercises long sequential dependencies."""
    net = Netlist(num_inputs=1)
    sig = 0
    depth = 300
    for _ in range(depth):
        sig = net.add_gate("NOT", sig)
    net.set_outputs([sig])
    outs = simulate(net, exhaustive_inputs(1))
    bits = unpack_bits(outs[0], 2)
    assert list(bits) == [0, 1]  # even depth: identity


def test_netlist_with_no_gates():
    net = Netlist(num_inputs=2)
    net.set_outputs([1, 0])
    outs = simulate(net, exhaustive_inputs(2))
    assert len(outs) == 2


# ----------------------------------------------------------------------
# CGP edges
# ----------------------------------------------------------------------
def test_single_column_params():
    p = CGPParams(num_inputs=2, num_outputs=1, columns=1)
    assert p.num_sources(0) == 2
    assert p.genome_length == 4


def test_evolution_zero_threshold_keeps_exact(bw4):
    """At threshold 0, every surviving parent computes exact products."""
    ch = netlist_to_chromosome(bw4)
    fit = MultiplierFitness(4, uniform(4, signed=True))
    res = evolve(
        ch, fit, threshold=0.0,
        config=EvolutionConfig(generations=200),
        rng=np.random.default_rng(0),
    )
    assert res.best_eval.wmed == 0.0
    from repro.circuits.verify import verify_multiplier

    verify_multiplier(res.best.to_netlist(), 4, signed=True)


def test_multi_row_cgp_decode(rng):
    """rows > 1 with levels-back restriction still decodes legally."""
    from repro.core.seeding import random_chromosome

    p = CGPParams(
        num_inputs=3, num_outputs=2, columns=6, rows=3, levels_back=2
    )
    for _ in range(5):
        ch = random_chromosome(p, rng)
        net = ch.to_netlist()
        net.validate()


def test_evolution_single_generation(bw4, rng):
    ch = netlist_to_chromosome(bw4)
    fit = MultiplierFitness(4, uniform(4, signed=True))
    res = evolve(
        ch, fit, threshold=0.01,
        config=EvolutionConfig(generations=1), rng=rng,
    )
    assert res.generations == 1


# ----------------------------------------------------------------------
# NN engine edges
# ----------------------------------------------------------------------
def test_lut_matmul_chunk_boundary(rng):
    """Inputs straddling the gather chunk size give identical results."""
    from repro.errors import exact_product_table, table_as_matrix

    lut = table_as_matrix(exact_product_table(4, True), 4)
    k, o = 64, 16
    rows = max(2, _GATHER_CHUNK_ELEMENTS // (k * o) + 1)
    rows = min(rows, 4096)  # keep memory sane if the constant grows
    a = rng.integers(-8, 8, size=(rows, k))
    w = rng.integers(-8, 8, size=(k, o))
    assert np.array_equal(lut_matmul(a, w, lut), a @ w)


def test_quantized_model_single_sample(rng):
    net = build_mlp(input_size=12, hidden=5, classes=3, rng=rng)
    x = rng.normal(size=(4, 12))
    qm = QuantizedModel(net, x)
    logits, _ = qm.forward(x[:1])
    assert logits.shape == (1, 3)


def test_quantized_model_all_zero_input(rng):
    net = build_mlp(input_size=6, hidden=4, classes=2, rng=rng)
    x = rng.normal(size=(8, 6))
    qm = QuantizedModel(net, x)
    logits, _ = qm.forward(np.zeros((2, 6)))
    assert np.isfinite(logits).all()


# ----------------------------------------------------------------------
# MAC characterization edges
# ----------------------------------------------------------------------
def test_mac_summary_deterministic_given_rng():
    d = uniform(8, signed=True)
    net = build_truncated_multiplier(8, 4, signed=True)
    a = mac_summary(net, 8, d, rng=np.random.default_rng(3))
    b = mac_summary(net, 8, d, rng=np.random.default_rng(3))
    assert a.power.total == b.power.total
    assert a.area == b.area


def test_mac_summary_approx_cheaper_than_exact():
    d = uniform(8, signed=True)
    exact = mac_summary(
        build_baugh_wooley_multiplier(8), 8, d, rng=np.random.default_rng(0)
    )
    approx = mac_summary(
        build_truncated_multiplier(8, 6, signed=True), 8, d,
        rng=np.random.default_rng(0),
    )
    assert approx.area < exact.area
    assert approx.power.total < exact.power.total
