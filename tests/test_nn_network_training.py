"""Sequential container, reference topologies, training loop."""

import numpy as np
import pytest

from repro.nn import (
    Sequential,
    accuracy,
    build_lenet5,
    build_mlp,
    cross_entropy_loss,
    mnist_like,
    softmax,
    train,
)
from repro.nn.layers import Dense, ReLU


def test_mlp_topology(rng):
    mlp = build_mlp(rng=rng)
    assert mlp.num_parameters() == 784 * 300 + 300 + 300 * 10 + 10
    logits = mlp.predict(np.zeros((2, 784)))
    assert logits.shape == (2, 10)


def test_lenet_topology(rng):
    net = build_lenet5(rng=rng)
    logits = net.predict(np.zeros((2, 32, 32, 1)))
    assert logits.shape == (2, 10)
    # Layer structure: 3 convs, 2 pools, 1 dense.
    from repro.nn.layers import AvgPool2D, Conv2D

    convs = [l for l in net.layers if isinstance(l, Conv2D)]
    pools = [l for l in net.layers if isinstance(l, AvgPool2D)]
    dense = [l for l in net.layers if isinstance(l, Dense)]
    assert len(convs) == 3 and len(pools) == 2 and len(dense) == 1
    assert dense[0].in_features == 120


def test_lenet_requires_32(rng):
    with pytest.raises(ValueError):
        build_lenet5(input_hw=28, rng=rng)


def test_predict_batching_consistent(rng):
    mlp = build_mlp(input_size=20, hidden=8, rng=rng)
    x = rng.normal(size=(30, 20))
    full = mlp.predict(x, batch_size=30)
    batched = mlp.predict(x, batch_size=7)
    assert np.allclose(full, batched)


def test_all_weights_concatenates(rng):
    mlp = build_mlp(input_size=5, hidden=3, classes=2, rng=rng)
    w = mlp.all_weights()
    assert w.shape == (5 * 3 + 3 * 2,)


def test_weighted_layers(rng):
    mlp = build_mlp(rng=rng)
    idx = [i for i, _ in mlp.weighted_layers()]
    assert idx == [0, 2]


def test_softmax_rows_sum_to_one(rng):
    probs = softmax(rng.normal(size=(5, 10)) * 50)
    assert np.allclose(probs.sum(axis=1), 1.0)
    assert np.all(probs >= 0)


def test_cross_entropy_perfect_prediction():
    logits = np.array([[100.0, 0.0], [0.0, 100.0]])
    loss, grad = cross_entropy_loss(logits, np.array([0, 1]))
    assert loss == pytest.approx(0.0, abs=1e-6)
    assert np.allclose(grad, 0.0, atol=1e-6)


def test_cross_entropy_gradient_is_probs_minus_onehot(rng):
    logits = rng.normal(size=(4, 3))
    labels = np.array([0, 1, 2, 0])
    _, grad = cross_entropy_loss(logits.copy(), labels)
    probs = softmax(logits)
    onehot = np.eye(3)[labels]
    assert np.allclose(grad, (probs - onehot) / 4)


def test_training_reduces_loss_tiny_task(rng):
    """A linearly separable blob task must be learned quickly."""
    n = 200
    x = rng.normal(size=(n, 2))
    labels = (x[:, 0] + x[:, 1] > 0).astype(np.int64)
    net = Sequential([Dense(2, 8, rng=rng), ReLU(), Dense(8, 2, rng=rng)])
    report = train(net, x, labels, epochs=12, batch_size=16, lr=0.1, rng=rng)
    assert report.epoch_losses[-1] < report.epoch_losses[0]
    assert accuracy(net, x, labels) > 0.9


def test_training_on_synthetic_digits(rng):
    x, y = mnist_like(600, rng)
    x = x.reshape(len(x), -1)
    net = build_mlp(rng=np.random.default_rng(5))
    report = train(net, x, y, epochs=4, lr=0.1, rng=rng)
    assert report.epoch_train_accuracy[-1] > 0.6
    assert len(report.epoch_losses) == 4


def test_lr_decay_applied(rng):
    from repro.nn.training import SGDMomentum

    x = rng.normal(size=(20, 2))
    labels = (x[:, 0] > 0).astype(np.int64)
    net = Sequential([Dense(2, 2, rng=rng)])
    report = train(net, x, labels, epochs=2, lr=0.1, lr_decay=0.5, rng=rng)
    assert len(report.epoch_losses) == 2


def test_sgd_momentum_lr_guard():
    from repro.nn.training import SGDMomentum

    with pytest.raises(ValueError):
        SGDMomentum(lr=0.0)
