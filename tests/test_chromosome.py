"""CGP genotype: encoding, decoding, simulation, conversion."""

import numpy as np
import pytest

from repro.circuits.generators import build_baugh_wooley_multiplier
from repro.circuits.simulator import exhaustive_inputs, truth_table
from repro.core import (
    CGP_FUNCTION_SET,
    CGPParams,
    Chromosome,
    netlist_to_chromosome,
    params_for_netlist,
    random_chromosome,
)


def small_params(**overrides):
    defaults = dict(num_inputs=3, num_outputs=2, columns=5)
    defaults.update(overrides)
    return CGPParams(**defaults)


def test_genome_length_formula():
    p = small_params()
    # S = r*c*(na+1) + no
    assert p.genome_length == 5 * 3 + 2
    assert p.num_nodes == 5


def test_params_validation():
    with pytest.raises(ValueError):
        CGPParams(num_inputs=0, num_outputs=1, columns=1)
    with pytest.raises(ValueError):
        CGPParams(num_inputs=1, num_outputs=1, columns=1, arity=3)
    with pytest.raises(KeyError):
        CGPParams(num_inputs=1, num_outputs=1, columns=1, functions=("FOO",))


def test_num_sources_unrestricted():
    p = small_params()
    assert p.num_sources(0) == 3
    assert p.num_sources(4) == 7


def test_num_sources_levels_back():
    p = small_params(levels_back=1)
    assert p.num_sources(0) == 3
    assert p.num_sources(3) == 4  # inputs + 1 previous column


def test_source_address_mapping_levels_back():
    p = small_params(levels_back=1)
    # node 3: sources are inputs 0..2 and node 2 (signal 5)
    assert p.source_address(3, 0) == 0
    assert p.source_address(3, 3) == 3 + 2  # first admissible node signal


def test_legal_source():
    p = small_params(levels_back=1)
    assert p.legal_source(3, 0)
    assert p.legal_source(3, 5)  # node 2
    assert not p.legal_source(3, 4)  # node 1: too far back
    assert not p.legal_source(3, 6)  # node 3 itself
    assert not p.legal_source(3, 99)


def test_chromosome_length_guard():
    p = small_params()
    with pytest.raises(ValueError):
        Chromosome(p, np.zeros(3, dtype=np.int64))


def test_active_nodes_simple():
    p = CGPParams(
        num_inputs=2, num_outputs=1, columns=3, functions=("AND", "OR")
    )
    # node0 = AND(0,1) -> sig 2; node1 = OR(0,0) dead; node2 = OR(2,1) -> sig4
    genes = np.array([0, 1, 0, 0, 0, 1, 2, 1, 1, 4], dtype=np.int64)
    ch = Chromosome(p, genes)
    assert list(ch.active_nodes()) == [0, 2]


def test_output_wired_to_input_has_no_active_nodes():
    p = CGPParams(num_inputs=2, num_outputs=1, columns=2, functions=("AND",))
    genes = np.array([0, 1, 0, 0, 1, 0, 1], dtype=np.int64)  # out = input 1
    ch = Chromosome(p, genes)
    assert len(ch.active_nodes()) == 0
    tt = truth_table(ch.to_netlist())
    assert list(tt) == [0, 0, 1, 1]  # input 1 is the high bit of the vector


def test_active_cache_invalidation():
    p = CGPParams(num_inputs=2, num_outputs=1, columns=2, functions=("AND",))
    genes = np.array([0, 1, 0, 2, 2, 0, 3], dtype=np.int64)
    ch = Chromosome(p, genes)
    assert list(ch.active_nodes()) == [0, 1]
    ch.genes[-1] = 2  # output now node 0
    ch.invalidate_cache()
    assert list(ch.active_nodes()) == [0]


def test_seeded_chromosome_matches_netlist(bw4):
    ch = netlist_to_chromosome(bw4)
    assert np.array_equal(
        truth_table(ch.to_netlist(), signed=True), truth_table(bw4, signed=True)
    )


def test_chromosome_simulate_equals_netlist_simulation(bw4):
    ch = netlist_to_chromosome(bw4)
    stim = exhaustive_inputs(8)
    words = ch.simulate(stim)
    from repro.circuits.simulator import words_to_values

    vals = words_to_values(words, 256, signed=True)
    assert np.array_equal(vals, truth_table(bw4, signed=True))


def test_cell_counts_matches_netlist(bw4):
    ch = netlist_to_chromosome(bw4)
    assert ch.cell_counts() == bw4.cell_counts(active_only=True)


def test_active_gene_positions_include_outputs(bw4):
    ch = netlist_to_chromosome(bw4)
    positions = set(int(x) for x in ch.active_gene_positions())
    p = ch.params
    out_start = p.num_nodes * p.genes_per_node
    for k in range(p.num_outputs):
        assert out_start + k in positions


def test_random_chromosome_valid(rng):
    p = CGPParams(
        num_inputs=4,
        num_outputs=3,
        columns=20,
        functions=CGP_FUNCTION_SET,
        levels_back=5,
    )
    for _ in range(10):
        ch = random_chromosome(p, rng)
        net = ch.to_netlist()
        net.validate()
        # every node gene is a legal source
        for node in range(p.num_nodes):
            a, b, fn = ch.node_genes(node)
            assert p.legal_source(node, a)
            assert p.legal_source(node, b)
            assert 0 <= fn < len(p.functions)


def test_simulate_rejects_bad_stimulus(bw4):
    ch = netlist_to_chromosome(bw4)
    with pytest.raises(ValueError):
        ch.simulate(exhaustive_inputs(4))


def test_copy_shares_nothing(bw4):
    ch = netlist_to_chromosome(bw4)
    clone = ch.copy()
    clone.genes[0] = 1 - clone.genes[0]
    assert ch.genes[0] != clone.genes[0]
