"""Synthetic digit datasets."""

import numpy as np
import pytest

from repro.nn import DIGIT_GLYPHS, mnist_like, render_digit, svhn_like


def test_glyphs_cover_all_digits():
    assert set(DIGIT_GLYPHS) == set(range(10))
    for glyph in DIGIT_GLYPHS.values():
        assert glyph.shape == (7, 5)
        assert set(np.unique(glyph)) <= {0.0, 1.0}


def test_glyphs_distinct():
    flat = [tuple(g.ravel()) for g in DIGIT_GLYPHS.values()]
    assert len(set(flat)) == 10


def test_render_digit_in_canvas(rng):
    img = render_digit(3, 28, rng)
    assert img.shape == (28, 28)
    assert img.max() > 0.5
    assert img.min() == 0.0


def test_render_digit_guards(rng):
    with pytest.raises(ValueError):
        render_digit(11, 28, rng)
    with pytest.raises(ValueError):
        render_digit(3, 8, rng, scale_range=(3, 3))  # 15x21 glyph won't fit


def test_mnist_like_shapes(rng):
    x, y = mnist_like(12, rng)
    assert x.shape == (12, 28, 28, 1)
    assert y.shape == (12,)
    assert x.min() >= 0.0 and x.max() <= 1.0
    assert set(np.unique(y)) <= set(range(10))


def test_svhn_like_shapes(rng):
    x, y = svhn_like(12, rng)
    assert x.shape == (12, 32, 32, 1)
    assert x.min() >= 0.0 and x.max() <= 1.0


def test_datasets_deterministic_per_seed():
    a, ya = mnist_like(5, np.random.default_rng(42))
    b, yb = mnist_like(5, np.random.default_rng(42))
    assert np.array_equal(a, b) and np.array_equal(ya, yb)


def test_datasets_differ_across_seeds():
    a, _ = svhn_like(5, np.random.default_rng(1))
    b, _ = svhn_like(5, np.random.default_rng(2))
    assert not np.array_equal(a, b)


def test_count_guards(rng):
    with pytest.raises(ValueError):
        mnist_like(0, rng)
    with pytest.raises(ValueError):
        svhn_like(-3, rng)


def test_svhn_backgrounds_nonblack(rng):
    """SVHN-like images have cluttered (non-zero) backgrounds."""
    x, _ = svhn_like(8, rng)
    # Corner pixels are background; their mean should be well above 0.
    corners = x[:, :3, :3, 0]
    assert corners.mean() > 0.1


def test_mnist_background_dark(rng):
    x, _ = mnist_like(8, rng, noise=0.0)
    corners = x[:, :2, :2, 0]
    assert corners.mean() < 0.2
