"""Netlist representation: construction, validation, cones, pruning."""

import pytest

from repro.circuits.netlist import Gate, Netlist


def _xor_and_example():
    """Two inputs; XOR and AND of them; outputs [xor, and]."""
    net = Netlist(num_inputs=2)
    x = net.add_gate("XOR", 0, 1)
    a = net.add_gate("AND", 0, 1)
    net.set_outputs([x, a])
    return net, x, a


def test_add_gate_returns_sequential_addresses():
    net = Netlist(num_inputs=3)
    assert net.add_gate("AND", 0, 1) == 3
    assert net.add_gate("OR", 2, 3) == 4
    assert net.num_signals == 5


def test_add_gate_rejects_forward_reference():
    net = Netlist(num_inputs=2)
    with pytest.raises(ValueError):
        net.add_gate("AND", 0, 5)


def test_add_gate_rejects_too_many_inputs():
    net = Netlist(num_inputs=2)
    with pytest.raises(ValueError):
        net.add_gate("AND", 0, 1, 1)


def test_gate_requires_minimum_arity():
    with pytest.raises(ValueError):
        Gate("AND", (0,))


def test_unary_gate_padding():
    net = Netlist(num_inputs=2)
    sig = net.add_gate("NOT", 1)
    assert sig == 2
    assert len(net.gates[0].inputs) == 2


def test_set_outputs_validates_addresses():
    net, _, _ = _xor_and_example()
    with pytest.raises(ValueError):
        net.set_outputs([99])


def test_outputs_may_point_at_inputs():
    net = Netlist(num_inputs=2)
    net.set_outputs([0, 1])
    net.validate()
    assert net.num_outputs == 2


def test_validate_accepts_well_formed():
    net, _, _ = _xor_and_example()
    net.validate()


def test_validate_rejects_illegal_source():
    net, _, _ = _xor_and_example()
    net.gates[0] = Gate("AND", (0, 3))  # self-reference: signal 3 is gate 1... gate 0 drives 2
    with pytest.raises(ValueError):
        net.validate()


def test_active_signals_excludes_dead_gates():
    net = Netlist(num_inputs=2)
    live = net.add_gate("XOR", 0, 1)
    net.add_gate("AND", 0, 1)  # dead
    net.set_outputs([live])
    active = net.active_signals()
    assert live in active
    assert 3 not in active  # the AND gate's signal
    assert active == {0, 1, live}


def test_active_gate_indices_topological():
    net = Netlist(num_inputs=2)
    a = net.add_gate("AND", 0, 1)
    b = net.add_gate("OR", a, 1)
    net.add_gate("XOR", 0, 0)  # dead
    net.set_outputs([b])
    assert net.active_gate_indices() == [0, 1]


def test_cell_counts_active_vs_all():
    net, _, _ = _xor_and_example()
    net.add_gate("NOR", 0, 1)  # dead gate
    assert net.cell_counts(active_only=True) == {"XOR": 1, "AND": 1}
    assert net.cell_counts(active_only=False) == {"XOR": 1, "AND": 1, "NOR": 1}


def test_fanouts_counts_consumers():
    net = Netlist(num_inputs=2)
    x = net.add_gate("XOR", 0, 1)
    y = net.add_gate("AND", x, x)
    net.set_outputs([y, y])
    fan = net.fanouts()
    assert fan[x] == 2  # both AND pins
    assert fan[y] == 2  # both outputs
    assert fan[0] == 1 and fan[1] == 1


def test_pruned_removes_dead_gates_and_preserves_function():
    from repro.circuits.simulator import truth_table

    net = Netlist(num_inputs=2)
    x = net.add_gate("XOR", 0, 1)
    net.add_gate("NOR", 0, 1)  # dead
    net.add_gate("AND", 2, 3)  # dead
    net.set_outputs([x])
    pruned = net.pruned()
    assert len(pruned.gates) == 1
    assert (truth_table(net) == truth_table(pruned)).all()


def test_pruned_keeps_input_outputs():
    net = Netlist(num_inputs=3)
    net.add_gate("AND", 0, 1)
    net.set_outputs([2, 3])
    pruned = net.pruned()
    assert pruned.outputs[0] == 2
    pruned.validate()


def test_copy_is_independent():
    net, x, _ = _xor_and_example()
    clone = net.copy()
    clone.add_gate("NOT", x)
    assert len(net.gates) == 2
    assert len(clone.gates) == 3


def test_gate_signal_mapping():
    net, _, _ = _xor_and_example()
    assert net.gate_signal(0) == 2
    assert net.gate_signal(1) == 3


def test_num_outputs():
    net, _, _ = _xor_and_example()
    assert net.num_outputs == 2
