"""Shared fixtures for the test suite.

Expensive artifacts (exhaustive tables, generated circuits, trained tiny
networks) are session-scoped so the several hundred tests stay fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import build_truncated_multiplier
from repro.circuits.generators import (
    build_array_multiplier,
    build_baugh_wooley_multiplier,
    build_wallace_multiplier,
)
from repro.circuits.simulator import truth_table
from repro.errors import (
    exact_product_table,
    paper_d1,
    paper_d2,
    uniform,
)


@pytest.fixture
def rng():
    """Fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def bw4():
    """Exact 4-bit signed Baugh-Wooley multiplier."""
    return build_baugh_wooley_multiplier(4)


@pytest.fixture(scope="session")
def array4():
    """Exact 4-bit unsigned array multiplier."""
    return build_array_multiplier(4)


@pytest.fixture(scope="session")
def wallace4():
    """Exact 4-bit unsigned Wallace multiplier."""
    return build_wallace_multiplier(4)


@pytest.fixture(scope="session")
def bw8():
    """Exact 8-bit signed Baugh-Wooley multiplier."""
    return build_baugh_wooley_multiplier(8)


@pytest.fixture(scope="session")
def exact4s():
    return exact_product_table(4, signed=True)


@pytest.fixture(scope="session")
def exact4u():
    return exact_product_table(4, signed=False)


@pytest.fixture(scope="session")
def exact8s():
    return exact_product_table(8, signed=True)


@pytest.fixture(scope="session")
def exact8u():
    return exact_product_table(8, signed=False)


@pytest.fixture(scope="session")
def trunc8s_tables():
    """Truth tables of signed 8-bit truncated multipliers, k = 0..8."""
    return {
        k: truth_table(
            build_truncated_multiplier(8, k, signed=True), signed=True
        )
        for k in range(9)
    }


@pytest.fixture(scope="session")
def d1():
    return paper_d1(8)


@pytest.fixture(scope="session")
def d2():
    return paper_d2(8)


@pytest.fixture(scope="session")
def du8s():
    return uniform(8, signed=True)


@pytest.fixture(scope="session")
def du8u():
    return uniform(8, signed=False)
