"""Structural composition and exhaustive verification helpers."""

import numpy as np
import pytest

from repro.circuits.compose import append_netlist
from repro.circuits.netlist import Netlist
from repro.circuits.simulator import truth_table
from repro.circuits.verify import (
    mismatch_count,
    operand_grids,
    reference_products,
    reference_sums,
    verify_adder,
    verify_multiplier,
)
from repro.circuits.generators import build_array_multiplier


def test_append_netlist_preserves_function():
    inner = build_array_multiplier(2)
    outer = Netlist(num_inputs=4)
    outs = append_netlist(outer, inner, [0, 1, 2, 3])
    outer.set_outputs(outs)
    assert np.array_equal(truth_table(outer), truth_table(inner))


def test_append_netlist_with_permuted_inputs():
    inner = Netlist(num_inputs=2)
    inner.set_outputs([inner.add_gate("ANDN", 0, 1)])  # a & ~b
    outer = Netlist(num_inputs=2)
    outs = append_netlist(outer, inner, [1, 0])  # swap operands
    outer.set_outputs(outs)
    tt = truth_table(outer)
    for v in range(4):
        a, b = v & 1, v >> 1
        assert tt[v] == (b & (1 - a))


def test_append_netlist_skips_dead_gates():
    inner = Netlist(num_inputs=1)
    live = inner.add_gate("NOT", 0)
    inner.add_gate("AND", 0, 0)  # dead
    inner.set_outputs([live])
    outer = Netlist(num_inputs=1)
    append_netlist(outer, inner, [0])
    assert len(outer.gates) == 1


def test_append_netlist_validates_driver_count():
    inner = build_array_multiplier(2)
    outer = Netlist(num_inputs=4)
    with pytest.raises(ValueError):
        append_netlist(outer, inner, [0, 1, 2])


def test_append_netlist_validates_driver_range():
    inner = Netlist(num_inputs=1)
    inner.set_outputs([0])
    outer = Netlist(num_inputs=1)
    with pytest.raises(ValueError):
        append_netlist(outer, inner, [7])


def test_operand_grids_unsigned():
    x, y = operand_grids(2, signed=False)
    assert list(x[:4]) == [0, 1, 2, 3]
    assert list(y[:4]) == [0, 0, 0, 0]
    assert list(y[-4:]) == [3, 3, 3, 3]


def test_operand_grids_signed():
    x, _ = operand_grids(2, signed=True)
    assert list(x[:4]) == [0, 1, -2, -1]


def test_reference_products_signed_values():
    ref = reference_products(2, signed=True)
    # vector: x = -2 (pattern 2), y = -1 (pattern 3) -> index 3*4+2
    assert ref[3 * 4 + 2] == 2


def test_reference_sums_wrap():
    ref = reference_sums(2, signed=False, with_carry=False)
    assert ref[3 * 4 + 3] == (3 + 3) % 4


def test_mismatch_count_zero_for_exact():
    net = build_array_multiplier(3)
    assert mismatch_count(net, reference_products(3, False), signed=False) == 0


def test_mismatch_count_shape_guard():
    net = build_array_multiplier(3)
    with pytest.raises(ValueError):
        mismatch_count(net, reference_products(2, False), signed=False)


def test_verify_multiplier_raises_with_details():
    net = build_array_multiplier(2)
    net.outputs[0] = 0  # corrupt LSB wiring
    with pytest.raises(AssertionError, match="mismatch at vector"):
        verify_multiplier(net, 2, signed=False)


def test_verify_adder_raises_on_corruption():
    from repro.circuits.generators import build_ripple_carry_adder

    net = build_ripple_carry_adder(2)
    net.outputs[0] = 1
    with pytest.raises(AssertionError):
        verify_adder(net, 2)
