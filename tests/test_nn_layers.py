"""NN layers: shape handling and numerical gradient checks."""

import numpy as np
import pytest

from repro.nn import AvgPool2D, Conv2D, Dense, Flatten, ReLU, im2col


def _numeric_grad(f, x, eps=1e-6):
    grad = np.zeros_like(x)
    flat = x.ravel()
    gflat = grad.ravel()
    for k in range(flat.size):
        old = flat[k]
        flat[k] = old + eps
        hi = f()
        flat[k] = old - eps
        lo = f()
        flat[k] = old
        gflat[k] = (hi - lo) / (2 * eps)
    return grad


def _check_input_grad(layer, x, tol=1e-5):
    y, cache = layer.forward(x)
    dy = np.random.default_rng(0).normal(size=y.shape)

    def loss():
        out, _ = layer.forward(x)
        return float((out * dy).sum())

    dx, _ = layer.backward(dy, cache)
    num = _numeric_grad(loss, x)
    assert np.allclose(dx, num, atol=tol), np.abs(dx - num).max()


def _check_param_grad(layer, x, name, tol=1e-5):
    y, cache = layer.forward(x)
    dy = np.random.default_rng(1).normal(size=y.shape)
    _, grads = layer.backward(dy, cache)

    def loss():
        out, _ = layer.forward(x)
        return float((out * dy).sum())

    num = _numeric_grad(loss, layer.params[name])
    assert np.allclose(grads[name], num, atol=tol)


def test_dense_shapes(rng):
    layer = Dense(6, 4, rng=rng)
    y, _ = layer.forward(np.zeros((3, 6)))
    assert y.shape == (3, 4)
    with pytest.raises(ValueError):
        layer.forward(np.zeros((3, 5)))


def test_dense_input_gradient(rng):
    layer = Dense(5, 3, rng=rng)
    _check_input_grad(layer, rng.normal(size=(4, 5)))


def test_dense_weight_gradients(rng):
    layer = Dense(5, 3, rng=rng)
    x = rng.normal(size=(4, 5))
    _check_param_grad(layer, x, "W")
    _check_param_grad(layer, x, "b")


def test_im2col_layout():
    x = np.arange(16, dtype=float).reshape(1, 4, 4, 1)
    cols = im2col(x, 3)
    assert cols.shape == (1, 2, 2, 9)
    # Patch at (0,0): rows 0-2, cols 0-2.
    assert list(cols[0, 0, 0]) == [0, 1, 2, 4, 5, 6, 8, 9, 10]


def test_im2col_kernel_too_large():
    with pytest.raises(ValueError):
        im2col(np.zeros((1, 2, 2, 1)), 3)


def test_conv_shapes(rng):
    layer = Conv2D(2, 5, 3, rng=rng)
    y, _ = layer.forward(np.zeros((2, 8, 8, 2)))
    assert y.shape == (2, 6, 6, 5)
    with pytest.raises(ValueError):
        layer.forward(np.zeros((2, 8, 8, 3)))


def test_conv_input_gradient(rng):
    layer = Conv2D(1, 2, 3, rng=rng)
    _check_input_grad(layer, rng.normal(size=(2, 5, 5, 1)))


def test_conv_weight_gradients(rng):
    layer = Conv2D(1, 2, 3, rng=rng)
    x = rng.normal(size=(2, 5, 5, 1))
    _check_param_grad(layer, x, "W")
    _check_param_grad(layer, x, "b")


def test_conv_matches_manual_convolution(rng):
    layer = Conv2D(1, 1, 2, rng=rng)
    x = rng.normal(size=(1, 3, 3, 1))
    y, _ = layer.forward(x)
    w = layer.params["W"].reshape(2, 2)
    for i in range(2):
        for j in range(2):
            expected = (x[0, i : i + 2, j : j + 2, 0] * w).sum() + layer.params["b"][0]
            assert y[0, i, j, 0] == pytest.approx(expected)


def test_avgpool_forward():
    x = np.arange(16, dtype=float).reshape(1, 4, 4, 1)
    pool = AvgPool2D(2)
    y, _ = pool.forward(x)
    assert y.shape == (1, 2, 2, 1)
    assert y[0, 0, 0, 0] == pytest.approx((0 + 1 + 4 + 5) / 4)


def test_avgpool_divisibility_guard():
    with pytest.raises(ValueError):
        AvgPool2D(2).forward(np.zeros((1, 5, 4, 1)))


def test_avgpool_gradient(rng):
    _check_input_grad(AvgPool2D(2), rng.normal(size=(2, 4, 4, 3)))


def test_relu_forward_backward(rng):
    x = np.array([[-1.0, 2.0, 0.0]])
    relu = ReLU()
    y, cache = relu.forward(x)
    assert list(y[0]) == [0.0, 2.0, 0.0]
    dx, _ = relu.backward(np.ones_like(y), cache)
    assert list(dx[0]) == [0.0, 1.0, 0.0]


def test_flatten_roundtrip(rng):
    x = rng.normal(size=(2, 3, 4, 5))
    flat = Flatten()
    y, cache = flat.forward(x)
    assert y.shape == (2, 60)
    dx, _ = flat.backward(y, cache)
    assert np.array_equal(dx, x)


def test_pool_size_guard():
    with pytest.raises(ValueError):
        AvgPool2D(0)
