"""Observability: metrics registry, shared slab, Prometheus text,
span tracing, and the instrumentation contracts of engine / library /
serve.

The acceptance-critical test here is
:func:`test_multiprocess_metrics_exact_aggregation`: under ``--procs 2``
the route-labelled request counters scraped from *any* worker must sum
to exactly the number of requests the client completed — the shared
slab is what makes that possible.
"""

import json
import os
import re
import subprocess
import sys
import time
import urllib.request

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.library import BuildSpec, DesignRecord, DesignStore, build_library
from repro.obs import catalog as obs_catalog
from repro.obs import trace as obs_trace
from repro.obs.export import CONTENT_TYPE, render_prometheus
from repro.obs.metrics import CAPACITY, MetricsRegistry, enabled, registry
from repro.serve import MultiProcessServer, ROUTES, ServeContext, handle

pytestmark = pytest.mark.skipif(
    not enabled(), reason="REPRO_OBS=0 disables the metrics registry"
)

_FORK_OK = sys.platform != "win32"

W = 2
SPEC = BuildSpec(
    components=("multiplier",),
    metrics=("wmed",),
    widths=(W,),
    thresholds_percent=(2.0,),
    generations=30,
    seed=7,
)


# ----------------------------------------------------------------------
# A strict Prometheus text-format (0.0.4) parser.
# ----------------------------------------------------------------------
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})? "
    r"(?P<value>\S+)$"
)
_LABEL_RE = re.compile(r'^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$')


def parse_prometheus(text: str):
    """Parse exposition text, raising AssertionError on any malformation.

    Returns ``(families, samples)`` where ``families`` maps family name
    to its TYPE and ``samples`` maps sample name to a list of
    ``(labels_dict, float_value)``.
    """
    families = {}
    samples = {}
    helped = set()
    current = None
    for lineno, line in enumerate(text.splitlines(), 1):
        assert line == line.rstrip(), f"line {lineno}: trailing whitespace"
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name = rest.split(" ", 1)[0]
            assert _NAME_RE.match(name), f"line {lineno}: bad HELP name"
            assert name not in helped, f"line {lineno}: duplicate HELP {name}"
            helped.add(name)
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            assert len(parts) == 4, f"line {lineno}: malformed TYPE"
            name, kind = parts[2], parts[3]
            assert _NAME_RE.match(name), f"line {lineno}: bad TYPE name"
            assert kind in ("counter", "gauge", "histogram"), \
                f"line {lineno}: unknown type {kind!r}"
            assert name in helped, f"line {lineno}: TYPE {name} before HELP"
            assert name not in families, f"line {lineno}: duplicate TYPE"
            families[name] = kind
            current = name
            continue
        assert not line.startswith("#"), f"line {lineno}: stray comment"
        m = _SAMPLE_RE.match(line)
        assert m, f"line {lineno}: malformed sample {line!r}"
        name = m.group("name")
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        family = name if name in families else base
        assert family in families, \
            f"line {lineno}: sample {name} has no TYPE"
        assert family == current, \
            f"line {lineno}: sample {name} outside its family block"
        if families[family] == "histogram":
            assert name != family, \
                f"line {lineno}: bare histogram sample {name}"
        labels = {}
        if m.group("labels"):
            for pair in m.group("labels").split(","):
                lm = _LABEL_RE.match(pair)
                assert lm, f"line {lineno}: malformed label {pair!r}"
                labels[lm.group(1)] = lm.group(2)
        value = float(m.group("value"))
        assert value == value, f"line {lineno}: NaN value"
        samples.setdefault(name, []).append((labels, value))
    return families, samples


def check_histogram(samples, name, labels=None):
    """Cumulative-bucket, le-ordering and count/sum invariants."""
    labels = labels or {}

    def rows(suffix):
        return [
            (lb, v) for lb, v in samples.get(name + suffix, [])
            if all(lb.get(k) == v2 for k, v2 in labels.items())
        ]

    buckets = rows("_bucket")
    assert buckets, f"no buckets for {name} {labels}"
    les = [lb["le"] for lb, _ in buckets]
    assert les[-1] == "+Inf", "last bucket must be +Inf"
    finite = [float(le) for le in les[:-1]]
    assert finite == sorted(finite), "le edges must ascend"
    values = [v for _, v in buckets]
    assert values == sorted(values), "bucket counts must be cumulative"
    (_, count), = rows("_count")
    (_, total), = rows("_sum")
    assert values[-1] == count, "+Inf bucket must equal _count"
    assert total >= 0
    return count, total


# ----------------------------------------------------------------------
# Catalog / registry
# ----------------------------------------------------------------------
def test_route_labels_match_route_table():
    # The catalog hard-codes route names (it must not import the serve
    # layer); this is the drift alarm.
    assert set(obs_catalog.ROUTE_LABELS) == (
        {r.name for r in ROUTES} | {"other"}
    )
    assert obs_catalog.route_label("best") == "best"
    assert obs_catalog.route_label(None) == "other"
    assert obs_catalog.route_label("no-such-route") == "other"


def test_registry_dedups_and_bounds():
    reg = registry()
    again = reg.counter("repro_engine_evals_total", "ignored duplicate")
    assert again is obs_catalog.ENGINE_EVALS
    assert 0 < reg._next_slot <= CAPACITY


def test_counter_gauge_basics():
    reg = MetricsRegistry(capacity=64)
    c = reg.counter("t_total", "t")
    g = reg.gauge("t_gauge", "t")
    fam = reg.counter("t_routes_total", "t", label="route", values=("a", "b"))
    c.inc()
    c.inc(4)
    g.set(17)
    fam.labels("a").inc(2)
    fam.labels("b").inc(3)
    assert c.value == c.total() == 5
    assert g.value == 17
    assert fam.total() == 5
    assert fam.child_map()["a"].value == 2
    assert fam.lane_sum(reg.lanes_view()[0]) == 5
    with pytest.raises(KeyError):
        fam.labels("nope")


# ----------------------------------------------------------------------
# Histogram buckets (property-tested boundaries)
# ----------------------------------------------------------------------
@settings(max_examples=300, deadline=None)
@given(
    raw=st.integers(min_value=-10, max_value=1 << 48),
    shift=st.integers(min_value=0, max_value=24),
    buckets=st.integers(min_value=2, max_value=28),
)
def test_histogram_bucket_boundaries(raw, shift, buckets):
    reg = MetricsRegistry(capacity=64)
    h = reg.histogram("t_h", "t", shift=shift, buckets=buckets)
    idx = h.bucket_index(raw)
    edges = h.finite_edges()
    assert len(edges) == buckets - 1
    assert 0 <= idx < buckets
    if idx < buckets - 1:
        assert raw <= edges[idx], "observation above its bucket edge"
    else:
        assert buckets < 2 or raw > edges[-1] or idx == buckets - 1
    if 0 < idx:
        assert raw > edges[idx - 1], "observation at or below previous edge"
    h.observe(raw)
    counts = h.counts()
    assert sum(counts) == 1 and counts[idx] == 1
    assert h.raw_sum() == max(int(raw), 0)


def test_histogram_exposition_invariants():
    reg = MetricsRegistry(capacity=64)
    h = reg.histogram("t_lat_seconds", "t", shift=2, buckets=6, scale=1e-9)
    for raw in (0, 1, 4, 5, 8, 1000, 10**12):
        h.observe(raw)
    families, samples = parse_prometheus(render_prometheus(reg))
    assert families["t_lat_seconds"] == "histogram"
    count, total = check_histogram(samples, "t_lat_seconds")
    assert count == 7
    assert total == pytest.approx((1 + 4 + 5 + 8 + 1000 + 10**12) * 1e-9)
    # le values are the finite raw edges scaled into seconds.
    les = [lb["le"] for lb, _ in samples["t_lat_seconds_bucket"]]
    assert les[0] == "4e-09" and les[-1] == "+Inf"


# ----------------------------------------------------------------------
# Shared slab
# ----------------------------------------------------------------------
def _twin_registry() -> MetricsRegistry:
    """A registry with one fixed catalog (same digest every call)."""
    reg = MetricsRegistry(capacity=128)
    reg.counter("t_req_total", "t", label="route", values=("a", "b"))
    reg.gauge("t_pid", "t")
    reg.histogram("t_h", "t", shift=0, buckets=4)
    return reg


def test_slab_round_trip(tmp_path):
    writer0, writer1, reader = (
        _twin_registry(), _twin_registry(), _twin_registry()
    )
    path = writer0.create_slab(2, dir=str(tmp_path))
    writer0.attach(path, 0)
    writer1.attach(path, 1)
    writer0.get("t_req_total").labels("a").inc(5)
    writer1.get("t_req_total").labels("a").inc(7)
    writer1.get("t_req_total").labels("b").inc(1)
    writer0.get("t_pid").set(111)
    writer1.get("t_pid").set(222)
    # Either attached registry sees the fleet-wide sum.
    assert writer0.get("t_req_total").total() == 13
    assert writer1.get("t_req_total").total() == 13
    assert writer0.get("t_req_total").labels("a").per_lane() == [5, 7]
    # A detached reader can snapshot the slab by file alone.
    lanes = reader.read_slab(path)
    assert lanes.shape == (2, 128)
    assert int(lanes[:, reader.get("t_pid").slot].max()) == 222
    text = render_prometheus(reader, lanes=lanes)
    _, samples = parse_prometheus(text)
    assert samples["t_req_total"] == [
        ({"route": "a"}, 12.0), ({"route": "b"}, 1.0),
    ]
    # Gauges render per worker lane instead of summing.
    pid_rows = dict(
        (lb["worker"], v) for lb, v in samples["t_pid"]
    )
    assert pid_rows == {"0": 111.0, "1": 222.0}
    os.unlink(path)


def test_slab_rejects_catalog_drift(tmp_path):
    writer = _twin_registry()
    path = writer.create_slab(1, dir=str(tmp_path))
    other = MetricsRegistry(capacity=128)
    other.counter("different_total", "t")
    with pytest.raises(ValueError, match="digest"):
        other.attach(path, 0)
    with pytest.raises(ValueError, match="lane"):
        writer.attach(path, 5)
    os.unlink(path)


def test_slab_attach_does_not_copy_inherited_counts(tmp_path):
    # A forked worker inherits the supervisor's counts; copying them
    # into its lane would duplicate them once per worker.
    reg = _twin_registry()
    reg.get("t_req_total").labels("a").inc(99)
    path = reg.create_slab(2, dir=str(tmp_path))
    reg.attach(path, 0)
    assert reg.get("t_req_total").total() == 0
    os.unlink(path)


# ----------------------------------------------------------------------
# Dual-write bit-identity: legacy stats() dicts are untouched, and the
# registry observes exactly the same events.
# ----------------------------------------------------------------------
def test_engine_stats_shape_and_registry_deltas():
    from repro.analysis.sweep import make_objective
    from repro.core import EvolutionConfig, evolve, get_component
    from repro.core.seeding import netlist_to_chromosome, params_for_netlist
    from repro.errors.distributions import distribution_from_spec

    dist = distribution_from_spec("uniform", W, False)
    comp = get_component("multiplier")
    seed_net = comp.build_seed(W, False)
    seed = netlist_to_chromosome(seed_net, params_for_netlist(seed_net))
    before = {
        "batch_calls": obs_catalog.ENGINE_BATCH_CALLS.value,
        "batch_evals": obs_catalog.ENGINE_BATCH_EVALS.value,
        "batch_dedup": obs_catalog.ENGINE_BATCH_DEDUP.value,
        "cache_hits": obs_catalog.ENGINE_CACHE_HITS.value,
        "cache_misses": obs_catalog.ENGINE_CACHE_MISSES.value,
        "evals": obs_catalog.ENGINE_EVALS.value,
    }
    evaluator = make_objective(W, dist)
    evolve(seed, evaluator, threshold=0.02,
           config=EvolutionConfig(generations=25),
           rng=np.random.default_rng(0))
    stats = evaluator.stats()
    # The legacy dict shapes are pinned bit-for-bit: same keys, values
    # sourced from the per-instance counters exactly as before.
    assert set(stats) == {
        "backend", "cache", "fast_reduce", "runtimes", "batch", "omp",
    }
    assert set(stats["batch"]) == {"calls", "evals", "dedup"}
    assert set(stats["cache"]) == {
        "entries", "max_entries", "hits", "misses", "hit_rate",
    }
    # And the global registry saw exactly the same events.
    assert (obs_catalog.ENGINE_BATCH_CALLS.value - before["batch_calls"]
            == stats["batch"]["calls"])
    assert (obs_catalog.ENGINE_BATCH_EVALS.value - before["batch_evals"]
            == stats["batch"]["evals"])
    assert (obs_catalog.ENGINE_BATCH_DEDUP.value - before["batch_dedup"]
            == stats["batch"]["dedup"])
    assert (obs_catalog.ENGINE_CACHE_HITS.value - before["cache_hits"]
            == stats["cache"]["hits"])
    assert (obs_catalog.ENGINE_CACHE_MISSES.value - before["cache_misses"]
            == stats["cache"]["misses"])
    assert obs_catalog.ENGINE_EVALS.value > before["evals"]
    assert obs_catalog.ENGINE_BACKEND.labels(evaluator.backend).value == 1


def test_response_cache_stats_shape_and_registry_deltas():
    from repro.serve import ResponseCache

    before_h = obs_catalog.RESPONSE_CACHE_HITS.value
    before_m = obs_catalog.RESPONSE_CACHE_MISSES.value
    cache = ResponseCache(maxsize=4)
    assert cache.get("k") is None
    cache.put("k", "v")
    assert cache.get("k") == "v"
    assert cache.get("k") == "v"
    stats = cache.stats()
    assert set(stats) == {"pid", "entries", "maxsize", "hits", "misses"}
    assert stats["hits"] == 2 and stats["misses"] == 1
    assert obs_catalog.RESPONSE_CACHE_HITS.value - before_h == 2
    assert obs_catalog.RESPONSE_CACHE_MISSES.value - before_m == 1


def test_store_admission_counters(tmp_path):
    def rec(error, area, design_id):
        return DesignRecord(
            design_id=design_id, component="multiplier", width=2,
            signed=False, metric="wmed", dist="Du", threshold_percent=1.0,
            error=error, area=area, power_uw=1.0, delay_ps=1.0, pdp=1.0,
            wmed=error, med=error, mred=error, error_rate=0.5,
            worst_case=1, bias=0.0, gates=3, chromosome="x",
        )

    store = DesignStore(str(tmp_path / "adm.sqlite"))
    before = {
        v: c.value for v, c in obs_catalog.STORE_ADMISSIONS.child_map().items()
    }
    before_pruned = obs_catalog.STORE_PRUNED.value
    assert store.add(rec(0.5, 100.0, "a" * 32)) == "added"
    assert store.add(rec(0.5, 100.0, "a" * 32)) == "duplicate"
    assert store.add(rec(0.6, 200.0, "b" * 32)) == "dominated"
    # Dominates the incumbent -> added, one row pruned.
    assert store.add(rec(0.4, 90.0, "c" * 32)) == "added"
    deltas = {
        v: c.value - before[v]
        for v, c in obs_catalog.STORE_ADMISSIONS.child_map().items()
    }
    assert deltas == {"added": 2, "duplicate": 1, "dominated": 1}
    assert obs_catalog.STORE_PRUNED.value - before_pruned == 1


# ----------------------------------------------------------------------
# Trace round trip: build.cell -> evolve.run nesting across a real build
# ----------------------------------------------------------------------
def test_trace_round_trip_build_nesting(tmp_path):
    trace_path = str(tmp_path / "trace.jsonl")
    obs_trace.configure(trace_path)
    try:
        store = DesignStore(str(tmp_path / "lib.sqlite"))
        build_library(store, SPEC, max_workers=1, executor="thread")
    finally:
        obs_trace.configure(os.environ.get("REPRO_TRACE") or None)
    spans = list(obs_trace.read_spans(trace_path))
    cells = [s for s in spans if s["name"] == "build.cell"]
    runs = [s for s in spans if s["name"] == "evolve.run"]
    assert len(cells) == len(SPEC.cells()) == len(runs)
    cell_ids = {c["id"] for c in cells}
    for run in runs:
        # evolve.run nests under the build.cell that spawned it.
        assert run["parent"] in cell_ids
        assert run["dur_ns"] > 0
        assert set(run["tags"]) >= {"threshold", "lam", "generations",
                                    "evaluations"}
    for cell in cells:
        assert cell["parent"] is None
        assert cell["tags"]["component"] == "multiplier"
        assert cell["tags"]["width"] == W
        assert cell["pid"] == os.getpid()
        parent_dur = cell["dur_ns"]
        child = next(r for r in runs if r["parent"] == cell["id"])
        assert child["dur_ns"] <= parent_dur
    # JSONL round-trips through json exactly (tail/summary feed on this).
    with open(trace_path) as f:
        for line in f:
            assert json.loads(line)
    summary = obs_trace.summarize(spans)
    assert summary["build.cell"]["count"] == len(cells)
    assert summary["build.cell"]["total_ms"] >= summary["evolve.run"]["total_ms"]


def test_trace_disabled_is_noop_singleton(tmp_path):
    obs_trace.configure(None)
    try:
        a = obs_trace.span("x", k=1)
        b = obs_trace.span("y")
        assert a is b  # the shared null span: no allocation when off
        with a as sp:
            sp.tag(more=2)
        assert not obs_trace.enabled()
    finally:
        obs_trace.configure(os.environ.get("REPRO_TRACE") or None)


def test_trace_skips_torn_lines(tmp_path):
    p = tmp_path / "torn.jsonl"
    p.write_text('{"name":"a","dur_ns":5}\n{"name":"b","dur_n\n\n')
    spans = list(obs_trace.read_spans(str(p)))
    assert [s["name"] for s in spans] == ["a"]


# ----------------------------------------------------------------------
# /metrics endpoint + /healthz fleet block (dispatch level)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def ctx(tmp_path_factory):
    db = str(tmp_path_factory.mktemp("obs") / "lib.sqlite")
    store = DesignStore(db)
    build_library(store, SPEC, max_workers=1, executor="thread")
    return ServeContext(store=store)


def test_metrics_endpoint_is_strict_prometheus(ctx):
    r = handle(ctx, "GET", "/metrics")
    assert r.status == 200
    assert r.content_type == CONTENT_TYPE
    families, samples = parse_prometheus(r.body.decode("utf-8"))
    for name, kind in [
        ("repro_http_requests_total", "counter"),
        ("repro_http_request_seconds", "histogram"),
        ("repro_engine_evals_total", "counter"),
        ("repro_engine_batch_size", "histogram"),
        ("repro_build_cells_total", "counter"),
        ("repro_store_admissions_total", "counter"),
        ("repro_serve_snapshot_designs", "gauge"),
    ]:
        assert families[name] == kind
    for label in obs_catalog.ROUTE_LABELS:
        check_histogram(samples, "repro_http_request_seconds",
                        {"route": label})


def test_request_counters_track_dispatch(ctx):
    def route_count(samples, route):
        for labels, value in samples["repro_http_requests_total"]:
            if labels == {"route": route}:
                return value
        return 0.0

    _, before = parse_prometheus(
        handle(ctx, "GET", "/metrics").body.decode())
    for _ in range(3):
        assert handle(ctx, "GET", "/healthz").status == 200
    assert handle(ctx, "GET", "/v1/stats").status == 200
    _, after = parse_prometheus(
        handle(ctx, "GET", "/metrics").body.decode())
    assert route_count(after, "health") - route_count(before, "health") == 3
    assert route_count(after, "stats") - route_count(before, "stats") == 1
    # The scrape counts itself only after rendering: the first scrape is
    # visible in the second, never in its own body.
    assert route_count(after, "metrics") - route_count(before, "metrics") == 1


def test_metrics_route_is_never_cached(ctx):
    route = next(r for r in ROUTES if r.name == "metrics")
    assert not route.cached
    assert route.media_type == "text/plain"
    r = handle(ctx, "GET", "/metrics")
    assert "ETag" not in dict(r.headers)


def test_healthz_fleet_block(ctx):
    body = handle(ctx, "GET", "/healthz").json()
    fleet = body["fleet"]
    assert fleet["enabled"] is True
    assert fleet["lanes"] == 1
    (worker,) = fleet["workers"]
    assert worker["lane"] == 0 and worker["pid"] == os.getpid()
    assert fleet["requests_total"] >= worker["requests"] >= 0
    assert isinstance(fleet["snapshot_rebuilds"], int)


# ----------------------------------------------------------------------
# THE acceptance test: exact fleet-wide request counts under --procs 2.
# ----------------------------------------------------------------------
@pytest.mark.skipif(not _FORK_OK, reason="needs fork()")
def test_multiprocess_metrics_exact_aggregation(tmp_path):
    db = str(tmp_path / "lib.sqlite")
    build_library(DesignStore(db), SPEC, max_workers=1, executor="thread")
    with MultiProcessServer(db, port=0, procs=2, quiet=True) as mps:
        base = f"http://127.0.0.1:{mps.port}"
        completed = 0
        # Mix of dispatcher-path and wire-fast-path (repeated URL)
        # requests, spread across workers by the kernel.
        for i in range(30):
            path = ("/healthz", "/v1/stats",
                    f"/v1/front?component=multiplier&width={W}")[i % 3]
            with urllib.request.urlopen(base + path) as resp:
                assert resp.status == 200
                resp.read()
            completed += 1

        def scrape():
            with urllib.request.urlopen(base + "/metrics") as resp:
                assert resp.status == 200
                assert resp.headers["Content-Type"] == CONTENT_TYPE
                return resp.read().decode("utf-8")

        # The wire fast path increments its counter just *after* the
        # response bytes go out, so allow a few retries for the last
        # in-flight increment to land — the assertion itself is exact.
        for attempt in range(40):
            _, samples = parse_prometheus(scrape())
            total = sum(v for _, v in samples["repro_http_requests_total"])
            expected = completed + attempt  # prior scrapes count too
            if total == expected:
                break
            time.sleep(0.05)
        assert total == expected, (
            f"fleet counter {total} != client-completed {expected}"
        )
        # Both workers are visible from one scrape: per-worker pid
        # gauges and the /healthz fleet block agree with the supervisor.
        pid_rows = {
            labels["worker"]: int(value)
            for labels, value in samples["repro_worker_pid"]
        }
        assert sorted(pid_rows.values()) == sorted(mps.pids)
        with urllib.request.urlopen(base + "/healthz") as resp:
            fleet = json.loads(resp.read())["fleet"]
        assert fleet["lanes"] == 2
        assert sorted(w["pid"] for w in fleet["workers"]) == sorted(mps.pids)
        slab = mps._slab
        assert slab is not None and os.path.exists(slab)
    assert not os.path.exists(slab)  # stop() unlinks the slab


# ----------------------------------------------------------------------
# Disabled mode (REPRO_OBS=0) — exercised in a subprocess because the
# registry is constructed at import time.
# ----------------------------------------------------------------------
def test_disabled_mode_is_null(tmp_path):
    code = """
import repro.obs as obs
from repro.obs.catalog import (ENGINE_EVALS, HTTP_REQUESTS,
                               HTTP_REQUESTS_BY_ROUTE, ROUTE_LABELS,
                               fleet_summary)
from repro.obs.metrics import NULL_METRIC, enabled

assert not enabled()
assert ENGINE_EVALS is NULL_METRIC
assert HTTP_REQUESTS.labels("best") is NULL_METRIC
# The hot-path dict still covers every route label.
assert set(HTTP_REQUESTS_BY_ROUTE) == set(ROUTE_LABELS)
HTTP_REQUESTS_BY_ROUTE["best"].inc()
ENGINE_EVALS.inc(5)
assert ENGINE_EVALS.value == 0
assert obs.render_prometheus().startswith("# repro observability disabled")
assert fleet_summary() == {"enabled": False, "lanes": 0, "workers": [],
                           "requests_total": 0, "snapshot_rebuilds": 0}
assert obs.create_slab(4) is None
obs.attach_worker(None, 0)
with obs.span("x", k=1) as sp:
    sp.tag(done=True)
print("ok")
"""
    env = dict(os.environ, REPRO_OBS="0", PYTHONPATH=os.pathsep.join(sys.path))
    out = subprocess.run(
        [sys.executable, "-c", code], env=env,
        capture_output=True, text=True,
    )
    assert out.returncode == 0, out.stderr
    assert out.stdout.strip() == "ok"


# ----------------------------------------------------------------------
# CLI: repro obs dump / tail
# ----------------------------------------------------------------------
def test_cli_obs_dump_local_and_slab(tmp_path, capsys):
    from repro.cli import main

    assert main(["obs", "dump"]) == 0
    text = capsys.readouterr().out
    families, _ = parse_prometheus(text)
    assert "repro_http_requests_total" in families

    reg = registry()
    path = reg.create_slab(2, dir=str(tmp_path))
    try:
        assert main(["obs", "dump", "--slab", path]) == 0
        families, _ = parse_prometheus(capsys.readouterr().out)
        assert "repro_engine_evals_total" in families
    finally:
        os.unlink(path)
        reg.slab_path = None


def test_cli_obs_tail_and_summary(tmp_path, capsys):
    from repro.cli import main

    trace_path = str(tmp_path / "t.jsonl")
    obs_trace.configure(trace_path)
    try:
        with obs_trace.span("outer", job="x"):
            with obs_trace.span("inner"):
                pass
    finally:
        obs_trace.configure(os.environ.get("REPRO_TRACE") or None)
    assert main(["obs", "tail", trace_path]) == 0
    out = capsys.readouterr().out
    assert "outer" in out and "inner" in out and "job=x" in out
    assert main(["obs", "tail", trace_path, "--summary"]) == 0
    out = capsys.readouterr().out
    assert "span" in out and "count" in out
    with pytest.raises(SystemExit, match="cannot read trace"):
        main(["obs", "tail", str(tmp_path / "missing.jsonl")])


def test_cli_build_progress_heartbeat(tmp_path, capsys):
    from repro.cli import main

    db = str(tmp_path / "b.sqlite")
    assert main([
        "library", "build", "--db", db, "--widths", str(W),
        "--thresholds", "2", "--generations", "20",
        "--max-workers", "1", "--executor", "thread", "--progress",
    ]) == 0
    # Too fast for a 2 s heartbeat tick, but the report still prints;
    # --quiet silences everything including the heartbeat.
    assert "cells:" in capsys.readouterr().out
    assert main([
        "library", "build", "--db", db, "--widths", str(W),
        "--thresholds", "2", "--generations", "20",
        "--max-workers", "1", "--executor", "thread",
        "--progress", "--quiet",
    ]) == 0
    captured = capsys.readouterr()
    assert captured.out == ""
    assert "[progress]" not in captured.err


# ----------------------------------------------------------------------
# Builder counters
# ----------------------------------------------------------------------
def test_build_counters_and_resume(tmp_path):
    store = DesignStore(str(tmp_path / "lib.sqlite"))
    cells = obs_catalog.BUILD_CELLS.child_map()
    before = {v: c.value for v, c in cells.items()}
    before_evals = obs_catalog.BUILD_EVALUATIONS.value
    before_seconds = sum(obs_catalog.BUILD_CELL_SECONDS.counts())
    report = build_library(store, SPEC, max_workers=1, executor="thread")
    assert obs_catalog.BUILD_CELLS_PLANNED.value == report.cells_total
    assert cells["added"].value - before["added"] == report.added
    assert cells["resumed"].value - before["resumed"] == 0
    assert (sum(obs_catalog.BUILD_CELL_SECONDS.counts()) - before_seconds
            == report.cells_run)
    assert obs_catalog.BUILD_EVALUATIONS.value > before_evals
    # Re-running the same spec resumes every cell, exactly once each.
    report2 = build_library(store, SPEC, max_workers=1, executor="thread")
    assert report2.cells_skipped == report.cells_total
    assert (cells["resumed"].value - before["resumed"]
            == report.cells_total)
