"""Imaging substrate: images, noise, Gaussian filter, PSNR."""

import numpy as np
import pytest

from repro.baselines import build_truncated_multiplier
from repro.circuits.simulator import truth_table
from repro.errors import exact_product_table, table_as_matrix
from repro.imaging import (
    add_gaussian_noise,
    add_salt_pepper_noise,
    average_psnr,
    blob_image,
    checker_image,
    estimate_filter_power,
    filter_image,
    filter_image_lut,
    gaussian_kernel_3x3,
    gradient_image,
    kernel_coefficient_distribution,
    kernel_shift,
    mse,
    psnr,
    smooth_noise_image,
    standard_image_suite,
)


# ----------------------------------------------------------------------
# Images
# ----------------------------------------------------------------------
def test_standard_image_suite_shapes_and_dtype():
    imgs = standard_image_suite(8, size=32)
    assert len(imgs) == 8
    for img in imgs:
        assert img.shape == (32, 32)
        assert img.dtype == np.uint8


def test_standard_image_suite_deterministic():
    a = standard_image_suite(5, size=32, seed=3)
    b = standard_image_suite(5, size=32, seed=3)
    for x, y in zip(a, b):
        assert np.array_equal(x, y)


def test_standard_image_suite_varied():
    a, b = standard_image_suite(2, size=32)[:2]
    assert not np.array_equal(a, b)


def test_gradient_image_spans_range():
    img = gradient_image(32, angle=0.0)
    assert img.min() == 0 and img.max() == 255


def test_checker_image_two_levels():
    img = checker_image(16, cell=4, low=10, high=200)
    assert set(np.unique(img)) == {10, 200}


def test_checker_cell_guard():
    with pytest.raises(ValueError):
        checker_image(16, cell=0)


def test_blob_and_smooth_noise_in_range(rng):
    for img in (blob_image(32, rng), smooth_noise_image(32, rng)):
        assert img.dtype == np.uint8
        assert 0 <= img.min() <= img.max() <= 255


# ----------------------------------------------------------------------
# Noise
# ----------------------------------------------------------------------
def test_gaussian_noise_changes_image(rng):
    img = checker_image(32)
    noisy = add_gaussian_noise(img, 10, rng)
    assert noisy.shape == img.shape
    assert not np.array_equal(noisy, img)
    assert noisy.dtype == np.uint8


def test_gaussian_noise_zero_sigma_identity(rng):
    img = checker_image(32)
    assert np.array_equal(add_gaussian_noise(img, 0, rng), img)


def test_gaussian_noise_sigma_guard(rng):
    with pytest.raises(ValueError):
        add_gaussian_noise(checker_image(8), -1, rng)


def test_salt_pepper_fraction(rng):
    img = np.full((64, 64), 128, dtype=np.uint8)
    noisy = add_salt_pepper_noise(img, 0.2, rng)
    frac = np.mean((noisy == 0) | (noisy == 255))
    assert 0.1 < frac < 0.3


def test_salt_pepper_amount_guard(rng):
    with pytest.raises(ValueError):
        add_salt_pepper_noise(checker_image(8), 1.5, rng)


# ----------------------------------------------------------------------
# PSNR
# ----------------------------------------------------------------------
def test_psnr_identical_is_infinite():
    img = checker_image(16)
    assert psnr(img, img) == float("inf")


def test_psnr_known_value():
    a = np.zeros((4, 4))
    b = np.full((4, 4), 255.0)
    assert psnr(a, b) == pytest.approx(0.0)


def test_mse_shape_guard():
    with pytest.raises(ValueError):
        mse(np.zeros((2, 2)), np.zeros((3, 3)))


def test_average_psnr_clamps_infinities():
    a = checker_image(16)
    b = add_gaussian_noise(a, 5, np.random.default_rng(0))
    avg = average_psnr([a, a], [a, b])  # one exact pair
    assert np.isfinite(avg)
    assert avg >= psnr(a, b)


def test_average_psnr_guards():
    with pytest.raises(ValueError):
        average_psnr([], [])
    with pytest.raises(ValueError):
        average_psnr([checker_image(8)], [])


# ----------------------------------------------------------------------
# Filter
# ----------------------------------------------------------------------
def test_kernel_sum_power_of_two():
    assert kernel_shift(gaussian_kernel_3x3()) == 4
    assert kernel_shift(gaussian_kernel_3x3(scale=4)) == 6


def test_kernel_scale_guard():
    with pytest.raises(ValueError):
        gaussian_kernel_3x3(scale=16)  # sum = 256: too big


def test_kernel_shift_rejects_non_power_of_two():
    with pytest.raises(ValueError):
        kernel_shift(np.array([[1, 2], [3, 4]]))


def test_filter_constant_image_is_identity():
    img = np.full((16, 16), 77, dtype=np.uint8)
    out = filter_image(img)
    assert np.all(out == 77)


def test_filter_output_shape_valid_region():
    img = checker_image(16)
    assert filter_image(img).shape == (14, 14)


def test_filter_smooths_checkerboard():
    img = checker_image(32, cell=1, low=0, high=255)
    out = filter_image(img)
    # A 1-pixel checkerboard under a binomial kernel flattens severely.
    assert out.std() < np.asarray(img, dtype=float).std()


def test_exact_lut_matches_direct_filter():
    lut = table_as_matrix(exact_product_table(8, False), 8)
    img = standard_image_suite(1, size=32)[0]
    assert np.array_equal(filter_image(img), filter_image_lut(img, lut))


def test_approximate_filter_degrades_gracefully():
    img = standard_image_suite(1, size=48)[0]
    exact_out = filter_image(img)
    scores = []
    for k in (2, 6, 9):
        net = build_truncated_multiplier(8, k, signed=False)
        lut = table_as_matrix(truth_table(net), 8)
        scores.append(psnr(exact_out, filter_image_lut(img, lut)))
    assert scores[0] > scores[1] > scores[2]


def test_kernel_coefficient_distribution_is_small_value_heavy():
    d = kernel_coefficient_distribution()
    assert d.pmf[:5].sum() == pytest.approx(1.0)  # all mass below 5
    assert d.pmf[0] == 0.0  # the 3x3 binomial kernel has no zero coefficient


def test_filter_power_scales_with_multiplier():
    exact = build_truncated_multiplier(8, 0, signed=False)
    trunc = build_truncated_multiplier(8, 6, signed=False)
    assert estimate_filter_power(trunc) < estimate_filter_power(exact)
