"""Extensions: generic fitness, approximate adders, joint WMED, annealing."""

import numpy as np
import pytest

from repro.baselines.adders import (
    build_lower_part_or_adder,
    build_truncated_adder,
)
from repro.circuits.generators import build_baugh_wooley_multiplier
from repro.circuits.simulator import truth_table
from repro.circuits.verify import reference_sums, verify_adder
from repro.core import (
    EvolutionConfig,
    MultiplierFitness,
    evolve,
    netlist_to_chromosome,
    params_for_netlist,
)
from repro.core.annealing import AnnealingConfig, anneal
from repro.core.generic_fitness import CircuitFitness
from repro.errors import from_pmf, uniform, wmed
from repro.errors.truth_tables import vector_weights_joint


# ----------------------------------------------------------------------
# Approximate adders
# ----------------------------------------------------------------------
@pytest.mark.parametrize("builder", [build_truncated_adder, build_lower_part_or_adder])
def test_adder_zero_approximation_is_exact(builder):
    verify_adder(builder(5, 0), 5)


def test_truncated_adder_low_bits_zero():
    net = build_truncated_adder(5, 3)
    tt = truth_table(net)
    assert np.all(tt % 8 == 0)


def test_loa_low_bits_are_or():
    net = build_lower_part_or_adder(4, 2)
    tt = truth_table(net)
    for v in range(256):
        a, b = v & 15, v >> 4
        low = ((a | b) & 3)
        assert tt[v] & 3 == low


def test_loa_beats_truncation_on_mean_error():
    ref = reference_sums(6, signed=False)
    k = 3
    err_trunc = np.abs(truth_table(build_truncated_adder(6, k)) - ref).mean()
    err_loa = np.abs(truth_table(build_lower_part_or_adder(6, k)) - ref).mean()
    assert err_loa < err_trunc


def test_adder_bounds_checked():
    with pytest.raises(ValueError):
        build_truncated_adder(4, 5)
    with pytest.raises(ValueError):
        build_lower_part_or_adder(0, 0)


def test_full_width_approximations():
    tt = truth_table(build_truncated_adder(3, 3))
    assert np.all(tt == 0)
    loa = truth_table(build_lower_part_or_adder(3, 3))
    for v in range(64):
        a, b = v & 7, v >> 3
        assert loa[v] == (a | b)


# ----------------------------------------------------------------------
# Generic fitness
# ----------------------------------------------------------------------
def test_circuit_fitness_matches_multiplier_fitness(bw4):
    ch = netlist_to_chromosome(bw4)
    d = uniform(4, signed=True)
    mult_fit = MultiplierFitness(4, d)
    generic = CircuitFitness(
        num_inputs=8,
        reference=mult_fit.exact,
        weights=mult_fit.weights,
        signed=True,
        normalizer=mult_fit.normalizer,
    )
    a = mult_fit.evaluate(ch, 0.01)
    b = generic.evaluate(ch, 0.01)
    assert a.fitness == pytest.approx(b.fitness)
    assert a.wmed == pytest.approx(b.wmed)
    assert a.area == pytest.approx(b.area)


def test_circuit_fitness_validates_reference():
    with pytest.raises(ValueError):
        CircuitFitness(4, np.zeros(10))
    with pytest.raises(ValueError):
        CircuitFitness(3, np.zeros(8), weights=np.ones(4))
    with pytest.raises(ValueError):
        CircuitFitness(3, np.zeros(8), normalizer=-1.0)


def test_evolve_approximate_adder_with_generic_fitness(rng):
    """The WMED machinery approximates adders too (paper generality)."""
    from repro.circuits.generators import build_ripple_carry_adder

    width = 4
    net = build_ripple_carry_adder(width)
    seed = netlist_to_chromosome(net, params_for_netlist(net, extra_columns=10))
    evaluator = CircuitFitness(
        num_inputs=2 * width,
        reference=reference_sums(width, signed=False),
        signed=False,
    )
    base_area = evaluator.area(seed)
    res = evolve(
        seed, evaluator, threshold=0.05,
        config=EvolutionConfig(generations=600), rng=rng,
    )
    assert res.feasible
    assert res.best_eval.wmed <= 0.05 + 1e-12
    assert res.best_eval.area <= base_area


# ----------------------------------------------------------------------
# Joint two-operand weighting
# ----------------------------------------------------------------------
def test_joint_weights_product_structure():
    px = np.zeros(4); px[1] = 1.0
    py = np.zeros(4); py[2] = 1.0
    dx = from_pmf(px, 2, name="x")
    dy = from_pmf(py, 2, name="y")
    w = vector_weights_joint(dx, dy)
    assert w.sum() == pytest.approx(1.0)
    # only vector with x pattern 1, y pattern 2 -> index 2*4+1
    assert w[2 * 4 + 1] == pytest.approx(1.0)


def test_joint_weights_uniform_matches_plain():
    dx = uniform(3)
    dy = uniform(3)
    w = vector_weights_joint(dx, dy)
    assert np.allclose(w, 1.0 / 64)


def test_joint_weights_guards():
    with pytest.raises(ValueError):
        vector_weights_joint(uniform(3), uniform(4))
    with pytest.raises(ValueError):
        vector_weights_joint(uniform(3), uniform(3, signed=True))


# ----------------------------------------------------------------------
# Simulated annealing baseline
# ----------------------------------------------------------------------
def test_anneal_finds_feasible_solution(bw4, rng):
    ch = netlist_to_chromosome(
        bw4, params_for_netlist(bw4, extra_columns=10)
    )
    fit = MultiplierFitness(4, uniform(4, signed=True))
    res = anneal(
        ch, fit, threshold=0.05,
        config=AnnealingConfig(steps=1500), rng=rng,
    )
    assert res.feasible
    assert res.best_eval.wmed <= 0.05 + 1e-12


def test_anneal_temperature_schedule():
    cfg = AnnealingConfig(steps=100, initial_temperature=10.0,
                          final_temperature=0.1)
    assert cfg.temperature(0) == pytest.approx(10.0)
    assert cfg.temperature(99) == pytest.approx(0.1)
    assert cfg.temperature(50) < 10.0


def test_anneal_threshold_guard(bw4, rng):
    ch = netlist_to_chromosome(bw4)
    fit = MultiplierFitness(4, uniform(4, signed=True))
    with pytest.raises(ValueError):
        anneal(ch, fit, threshold=-1.0, rng=rng)


def test_cgp_competitive_with_annealing(bw4):
    """At equal evaluation budget, (1+lambda) CGP should not lose badly
    to annealing — the paper's choice of search engine."""
    ch = netlist_to_chromosome(
        bw4, params_for_netlist(bw4, extra_columns=10)
    )
    fit = MultiplierFitness(4, uniform(4, signed=True))
    cgp = evolve(
        ch, fit, threshold=0.05,
        config=EvolutionConfig(generations=500),
        rng=np.random.default_rng(1),
    )
    sa = anneal(
        ch, fit, threshold=0.05,
        config=AnnealingConfig(steps=2000),
        rng=np.random.default_rng(1),
    )
    assert cgp.feasible and sa.feasible
    assert cgp.best_eval.area <= sa.best_eval.area * 1.25
