"""Cross-module integration tests: the paper's flows end to end (scaled).

These use 4-bit multipliers and small budgets so the whole suite stays
fast, but they exercise the exact pipelines behind Fig. 3-7 and Table I.
"""

import numpy as np
import pytest

from repro.analysis import characterize_multiplier, error_mass_correlation, evolve_front
from repro.baselines import build_truncated_multiplier
from repro.circuits.generators import build_baugh_wooley_multiplier, build_multiplier
from repro.circuits.simulator import truth_table
from repro.core import EvolutionConfig
from repro.errors import (
    discretized_half_normal,
    exact_product_table,
    table_as_matrix,
    uniform,
    wmed,
)
from repro.imaging import (
    add_gaussian_noise,
    average_psnr,
    filter_image,
    filter_image_lut,
    standard_image_suite,
)


@pytest.fixture(scope="module")
def evolved_4bit():
    """One distribution-driven and one uniform-driven 4-bit sweep."""
    width = 4
    seed = build_baugh_wooley_multiplier(width)
    d_half = discretized_half_normal(width, sigma=2.5, signed=True, name="Dh")
    du = uniform(width, signed=True)
    cfg = EvolutionConfig(generations=1200)
    levels = [2.0, 8.0]
    front_h = evolve_front(
        seed, width, d_half, levels, [d_half, du],
        config=cfg, rng=np.random.default_rng(100),
    )
    front_u = evolve_front(
        seed, width, du, levels, [d_half, du],
        config=cfg, rng=np.random.default_rng(101),
    )
    return d_half, du, front_h, front_u


def test_distribution_driven_wins_under_its_own_metric(evolved_4bit):
    """The Fig. 3 shape: at equal targets, each method satisfies its own
    WMED, and the cross-metric evaluation differs."""
    d_half, du, front_h, front_u = evolved_4bit
    for p, level in zip(front_h, [2.0, 8.0]):
        assert p.wmed_percent("Dh") <= level + 1e-9
    for p, level in zip(front_u, [2.0, 8.0]):
        assert p.wmed_percent("Du") <= level + 1e-9
    # The Dh-evolved deep-approximation point typically violates Du's
    # budget (it concentrated error on unlikely operands) or at least is
    # no better under Du than under Dh.
    deep = front_h[-1]
    assert deep.wmed_percent("Du") >= deep.wmed_percent("Dh") - 1e-9


def test_evolved_area_not_worse_than_seed(evolved_4bit):
    _, _, front_h, _ = evolved_4bit
    seed_area = characterize_multiplier(
        build_baugh_wooley_multiplier(4), 4,
        [uniform(4, signed=True)],
    ).area
    for p in front_h:
        assert p.area <= seed_area + 1e-9


def test_error_mass_avoids_probable_operands(evolved_4bit):
    """The Fig. 4 shape: error mass anti-correlates with D."""
    d_half, _, front_h, _ = evolved_4bit
    deep = front_h[-1]
    if deep.wmed_by_dist["Dh"] == 0:
        pytest.skip("search found an exact circuit at this budget")
    corr = error_mass_correlation(deep.table, 4, d_half)
    assert corr < 0.25  # no positive alignment of error with probability


def test_gaussian_filter_flow_with_lut():
    """The Fig. 5 plumbing: evolved/baseline LUTs drive the image filter."""
    images = standard_image_suite(4, size=32)
    rng = np.random.default_rng(0)
    noisy = [add_gaussian_noise(im, 12, rng) for im in images]
    reference = [filter_image(n) for n in noisy]

    exact_lut = table_as_matrix(exact_product_table(8, False), 8)
    same = [filter_image_lut(n, exact_lut) for n in noisy]
    for a, b in zip(reference, same):
        assert np.array_equal(a, b)

    rough_lut = table_as_matrix(
        truth_table(build_truncated_multiplier(8, 8, signed=False)), 8
    )
    rough = [filter_image_lut(n, rough_lut) for n in noisy]
    assert average_psnr(reference, rough) < 40.0


def test_mac_integration_with_evolved_multiplier(evolved_4bit):
    """An evolved multiplier embeds into a MAC whose error matches."""
    from repro.circuits.generators import build_mac

    _, _, front_h, _ = evolved_4bit
    point = front_h[0]
    mac = build_mac(4, 10, multiplier=point.netlist, signed=True)
    tt = truth_table(mac, signed=True)
    v = np.arange(1 << 18)

    def dec(val, bits):
        return np.where(val >= (1 << (bits - 1)), val - (1 << bits), val)

    x = dec(v & 15, 4)
    y = dec((v >> 4) & 15, 4)
    acc = dec((v >> 8) & 1023, 10)
    # MAC output == acc + M~(x, y) (mod 2^10 signed)
    mult_table = point.table
    prod = mult_table[((v >> 4) & 15) * 16 + (v & 15)]
    ref = ((acc + prod + 512) % 1024) - 512
    assert np.array_equal(tt, ref)


def test_quantized_nn_with_baseline_lut_end_to_end(rng):
    """The Fig. 7 plumbing on a tiny MLP: more approximation, less accuracy."""
    from repro.nn import QuantizedModel, build_mlp, mnist_like, train

    x, y = mnist_like(2500, rng)
    x = x.reshape(len(x), -1)
    net = build_mlp(rng=np.random.default_rng(9))
    train(net, x[:2000], y[:2000], epochs=6, lr=0.1, lr_decay=0.9, rng=rng)
    qm = QuantizedModel(net, x[:128])
    test_x, test_y = x[2000:], y[2000:]
    accs = []
    for k in (0, 4, 8):
        lut = table_as_matrix(
            truth_table(build_truncated_multiplier(8, k, signed=True), signed=True),
            8,
        )
        accs.append(qm.accuracy(test_x, test_y, lut=lut))
    assert accs[0] >= accs[2] - 0.02  # mild >= brutal (small slack for noise)
    assert accs[0] > 0.55
