"""Mutation operator and netlist seeding."""

import numpy as np
import pytest

from repro.circuits.generators import (
    build_array_multiplier,
    build_baugh_wooley_multiplier,
    build_wallace_multiplier,
)
from repro.circuits.simulator import truth_table
from repro.core import CGPParams, netlist_to_chromosome, params_for_netlist
from repro.core.mutation import mutate, randomize_output_genes
from repro.core.seeding import random_chromosome


def test_mutate_changes_at_most_h_genes(rng, bw4):
    parent = netlist_to_chromosome(bw4)
    for h in (1, 3, 5):
        child, changed = mutate(parent, h, rng)
        assert len(changed) <= h
        diff = np.nonzero(parent.genes != child.genes)[0]
        assert set(int(d) for d in diff) == set(changed)


def test_mutate_rejects_nonpositive_h(rng, bw4):
    parent = netlist_to_chromosome(bw4)
    with pytest.raises(ValueError):
        mutate(parent, 0, rng)


def test_mutate_preserves_validity_over_many_rounds(rng, bw4):
    """Property: every mutant decodes to a structurally valid circuit."""
    ch = netlist_to_chromosome(bw4)
    p = ch.params
    for _ in range(300):
        ch, _ = mutate(ch, 5, rng)
    for node in range(p.num_nodes):
        a, b, fn = ch.node_genes(node)
        assert p.legal_source(node, a)
        assert p.legal_source(node, b)
        assert 0 <= fn < len(p.functions)
    lo, hi = p.output_range()
    assert all(lo <= int(o) < hi for o in ch.output_genes)
    ch.to_netlist().validate()


def test_mutate_respects_levels_back(rng):
    p = CGPParams(
        num_inputs=3, num_outputs=2, columns=30, levels_back=2
    )
    ch = random_chromosome(p, rng)
    for _ in range(200):
        ch, _ = mutate(ch, 5, rng)
    for node in range(p.num_nodes):
        a, b, _fn = ch.node_genes(node)
        assert p.legal_source(node, a)
        assert p.legal_source(node, b)


def test_mutate_does_not_touch_parent(rng, bw4):
    parent = netlist_to_chromosome(bw4)
    before = parent.genes.copy()
    for _ in range(50):
        mutate(parent, 5, rng)
    assert np.array_equal(parent.genes, before)


def test_randomize_output_genes(rng, bw4):
    ch = netlist_to_chromosome(bw4)
    randomize_output_genes(ch, rng)
    lo, hi = ch.params.output_range()
    assert all(lo <= int(o) < hi for o in ch.output_genes)


# ----------------------------------------------------------------------
# Seeding
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "builder,signed",
    [
        (build_array_multiplier, False),
        (build_wallace_multiplier, False),
        (build_baugh_wooley_multiplier, True),
    ],
)
def test_seeding_roundtrip_preserves_function(builder, signed):
    net = builder(4)
    ch = netlist_to_chromosome(net)
    assert np.array_equal(
        truth_table(ch.to_netlist(), signed=signed),
        truth_table(net, signed=signed),
    )


def test_params_for_netlist_sizes(bw4):
    p = params_for_netlist(bw4, extra_columns=10)
    assert p.columns == len(bw4.gates) + 10
    assert p.num_inputs == bw4.num_inputs
    assert p.num_outputs == bw4.num_outputs


def test_seeding_rejects_too_small(bw4):
    p = CGPParams(
        num_inputs=8, num_outputs=8, columns=3,
    )
    with pytest.raises(ValueError):
        netlist_to_chromosome(bw4, p)


def test_seeding_rejects_shape_mismatch(bw4):
    p = CGPParams(num_inputs=6, num_outputs=8, columns=400)
    with pytest.raises(ValueError):
        netlist_to_chromosome(bw4, p)


def test_seeding_rejects_missing_function(bw4):
    p = params_for_netlist(bw4, functions=("AND", "OR"))
    with pytest.raises(ValueError):
        netlist_to_chromosome(bw4, p)


def test_seeding_pads_with_inactive_nodes(bw4):
    p = params_for_netlist(bw4, extra_columns=25)
    ch = netlist_to_chromosome(bw4, p)
    # Padding nodes exist but are inactive.
    assert len(ch.active_nodes()) <= len(bw4.gates)
    assert ch.params.num_nodes == len(bw4.gates) + 25
