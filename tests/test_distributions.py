"""Operand distributions: constructors, invariants, sampling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors.distributions import (
    PMF_WIDTH_CUTOFF,
    Distribution,
    WideDistribution,
    discretized_half_normal,
    discretized_normal,
    distribution_from_spec,
    empirical,
    from_pmf,
    paper_d1,
    paper_d2,
    uniform,
)


def test_pmf_is_normalized():
    d = from_pmf(np.ones(16) * 3.0, width=4)
    assert d.pmf.sum() == pytest.approx(1.0)


def test_pmf_wrong_size_rejected():
    with pytest.raises(ValueError):
        from_pmf(np.ones(10), width=4)


def test_negative_mass_rejected():
    pmf = np.ones(4)
    pmf[0] = -0.5
    with pytest.raises(ValueError):
        from_pmf(pmf, width=2)


def test_zero_mass_rejected():
    with pytest.raises(ValueError):
        from_pmf(np.zeros(4), width=2)


def test_values_unsigned():
    d = uniform(3)
    assert list(d.values) == list(range(8))


def test_values_signed():
    d = uniform(3, signed=True)
    assert list(d.values) == [0, 1, 2, 3, -4, -3, -2, -1]


def test_probability_of_value_signed():
    pmf = np.zeros(8)
    pmf[7] = 1.0  # pattern 7 = value -1
    d = from_pmf(pmf, width=3, signed=True)
    assert d.probability_of_value(-1) == pytest.approx(1.0)
    with pytest.raises(ValueError):
        d.probability_of_value(5)


def test_uniform_mean():
    assert uniform(8).mean() == pytest.approx(127.5)
    assert uniform(8, signed=True).mean() == pytest.approx(-0.5)


def test_entropy_uniform_is_width():
    assert uniform(6).entropy() == pytest.approx(6.0)


def test_entropy_point_mass_zero():
    pmf = np.zeros(8)
    pmf[3] = 1.0
    assert from_pmf(pmf, width=3).entropy() == pytest.approx(0.0)


def test_sample_respects_support(rng):
    pmf = np.zeros(16)
    pmf[[2, 5]] = 0.5
    d = from_pmf(pmf, width=4)
    samples = d.sample(200, rng)
    assert set(np.unique(samples)) <= {2, 5}


def test_discretized_normal_peaks_at_mean():
    d = discretized_normal(8, mean=127.5, std=30)
    assert abs(int(np.argmax(d.pmf)) - 127) <= 1


def test_discretized_normal_rejects_bad_std():
    with pytest.raises(ValueError):
        discretized_normal(8, mean=0, std=0)


def test_half_normal_decreasing_unsigned():
    d = discretized_half_normal(8, sigma=60)
    assert d.pmf[0] > d.pmf[64] > d.pmf[200]


def test_half_normal_signed_symmetric():
    d = discretized_half_normal(8, sigma=40, signed=True)
    # P(value v) == P(value -v) for the symmetric-in-|v| construction.
    vals = d.values
    for v in (1, 10, 50):
        p_pos = d.pmf[np.where(vals == v)[0][0]]
        p_neg = d.pmf[np.where(vals == -v)[0][0]]
        assert p_pos == pytest.approx(p_neg)
    assert d.pmf[0] == d.pmf.max()


def test_empirical_counts():
    d = empirical(np.array([1, 1, 2, 3]), width=4)
    assert d.pmf[1] == pytest.approx(0.5)
    assert d.pmf[2] == pytest.approx(0.25)
    assert d.pmf[0] == 0.0


def test_empirical_signed_range_check():
    with pytest.raises(ValueError):
        empirical(np.array([200]), width=8, signed=True)
    d = empirical(np.array([-128, 127]), width=8, signed=True)
    assert d.pmf[128] == pytest.approx(0.5)  # pattern of -128


def test_empirical_smoothing_floors_support():
    d = empirical(np.array([0]), width=4, smoothing=0.1)
    assert np.all(d.pmf > 0)


def test_empirical_empty_without_smoothing():
    with pytest.raises(ValueError):
        empirical(np.array([], dtype=int), width=4)


def test_paper_distributions_shapes():
    d1, d2 = paper_d1(), paper_d2()
    assert abs(int(np.argmax(d1.pmf)) - 127) <= 1  # D1 peaks mid-range
    assert int(np.argmax(d2.pmf)) == 0  # D2 decays from zero
    assert d1.pmf.sum() == pytest.approx(1.0)
    assert d2.pmf.sum() == pytest.approx(1.0)


def test_renamed():
    d = uniform(4).renamed("X")
    assert d.name == "X"
    assert np.array_equal(d.pmf, uniform(4).pmf)


@given(st.integers(min_value=1, max_value=8))
def test_uniform_any_width(width):
    d = uniform(width)
    assert d.size == 1 << width
    assert d.pmf.sum() == pytest.approx(1.0)


# ----------------------------------------------------------------------
# Spec-grammar and bugfix regressions
# ----------------------------------------------------------------------
def test_d1_d2_signed_spec_rejected():
    # Regression: d1/d2 are unsigned-pattern weightings; signed=True used
    # to be silently ignored, weighting pattern 0b1000... as +2**(w-1)
    # while the tables decode it as a negative value.
    for spec in ("d1", "d2"):
        with pytest.raises(ValueError, match="unsigned operand patterns"):
            distribution_from_spec(spec, 8, True)
        d = distribution_from_spec(spec, 8, False)
        assert not d.signed


def test_underflow_density_names_spec_and_range():
    # Regression: a density whose mass underflows to zero on the operand
    # range raised an unhelpful "pmf must have positive finite mass".
    with pytest.raises(ValueError, match=r"\[0, 255\]"):
        distribution_from_spec("normal:100000:1", 8, False)
    with pytest.raises(ValueError, match="underflows"):
        discretized_normal(8, mean=1e6, std=0.5)
    with pytest.raises(ValueError, match="no mass"):
        discretized_normal(4, mean=-1e6, std=1.0)


def test_malformed_spec_names_accepted_forms():
    for bad in ("half-normal:oops", "normal:1", "normal:1:2:3", "nope",
                "half-normal", "normal:a:b"):
        with pytest.raises(ValueError, match="half-normal:<sigma>"):
            distribution_from_spec(bad, 8, False)


def test_inverse_cdf_sampling_matches_pmf():
    # sample_patterns must follow the pmf (inverse-CDF, no rng.choice).
    d = paper_d2(4)
    rng = np.random.default_rng(0)
    patterns = d.sample_patterns(200_000, rng)
    assert patterns.dtype == np.uint64
    freq = np.bincount(patterns.astype(np.int64), minlength=d.size)
    freq = freq / freq.sum()
    assert np.abs(freq - d.pmf).max() < 5e-3


def test_wide_distribution_above_cutoff():
    d = distribution_from_spec("uniform", PMF_WIDTH_CUTOFF + 4, False)
    assert isinstance(d, WideDistribution)
    rng = np.random.default_rng(1)
    v = d.sample_patterns(1000, rng)
    assert v.max() < 1 << d.width
    with pytest.raises(ValueError, match="parametric"):
        _ = d.pmf


def test_wide_normal_sampling_signed_and_unsigned():
    w = PMF_WIDTH_CUTOFF + 2
    rng = np.random.default_rng(2)
    signed = distribution_from_spec(f"half-normal:1000", w, True)
    vals = signed.sample(5000, rng)
    assert vals.min() < 0 < vals.max()
    assert np.abs(vals).max() < 10_000
    unsigned = distribution_from_spec("normal:1000000:1000", w, False)
    u = unsigned.sample(5000, rng)
    assert 990_000 < u.min() and u.max() < 1_010_000


def test_wide_degenerate_spec_rejected():
    w = PMF_WIDTH_CUTOFF + 2
    with pytest.raises(ValueError, match="no mass"):
        distribution_from_spec(f"normal:-1e30:1", w, False)


def test_sampling_reproducible():
    d = paper_d1(8)
    a = d.sample_patterns(100, np.random.default_rng(7))
    b = d.sample_patterns(100, np.random.default_rng(7))
    assert np.array_equal(a, b)
