"""Exact arithmetic generators: adders, subtractors, multipliers,
dividers, barrel shifters, MAC units."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.generators import (
    accumulator_width,
    build_array_multiplier,
    build_barrel_shifter,
    build_baugh_wooley_multiplier,
    build_borrow_ripple_subtractor,
    build_mac,
    build_multiplier,
    build_restoring_divider,
    build_ripple_carry_adder,
    build_wallace_multiplier,
    full_adder,
    full_subtractor,
    half_adder,
    half_subtractor,
    partial_product_columns,
    reduce_columns,
    ripple_carry_adder,
    shift_amount_bits,
)
from repro.circuits.netlist import Netlist
from repro.circuits.simulator import truth_table
from repro.circuits.verify import (
    reference_products,
    verify_adder,
    verify_multiplier,
)


# ----------------------------------------------------------------------
# Adders
# ----------------------------------------------------------------------
def test_half_adder_truth_table():
    net = Netlist(num_inputs=2)
    s, c = half_adder(net, 0, 1)
    net.set_outputs([s, c])
    assert list(truth_table(net)) == [0, 1, 1, 2]


def test_full_adder_truth_table():
    net = Netlist(num_inputs=3)
    s, c = full_adder(net, 0, 1, 2)
    net.set_outputs([s, c])
    tt = truth_table(net)
    for v in range(8):
        ones = bin(v).count("1")
        assert tt[v] == ones


@pytest.mark.parametrize("width", [1, 2, 3, 4, 6, 8])
def test_ripple_carry_adder_exhaustive(width):
    verify_adder(build_ripple_carry_adder(width), width)


def test_ripple_carry_adder_without_carry_out():
    net = build_ripple_carry_adder(3, with_carry_out=False)
    tt = truth_table(net)
    for v in range(64):
        a, b = v & 7, v >> 3
        assert tt[v] == (a + b) % 8


def test_ripple_carry_adder_with_cin():
    net = Netlist(num_inputs=5)  # a(2) b(2) cin
    sums, cout = ripple_carry_adder(net, [0, 1], [2, 3], cin=4)
    net.set_outputs(sums + [cout])
    tt = truth_table(net)
    for v in range(32):
        a, b, cin = v & 3, (v >> 2) & 3, (v >> 4) & 1
        assert tt[v] == a + b + cin


def test_ripple_carry_adder_width_mismatch():
    net = Netlist(num_inputs=3)
    with pytest.raises(ValueError):
        ripple_carry_adder(net, [0, 1], [2])


def test_zero_width_adder_rejected():
    with pytest.raises(ValueError):
        build_ripple_carry_adder(0)


# ----------------------------------------------------------------------
# Multipliers
# ----------------------------------------------------------------------
@pytest.mark.parametrize("width", [1, 2, 3, 4, 6])
def test_array_multiplier_exhaustive(width):
    verify_multiplier(build_array_multiplier(width), width, signed=False)


@pytest.mark.parametrize("width", [1, 2, 3, 4, 6])
def test_wallace_multiplier_exhaustive(width):
    verify_multiplier(build_wallace_multiplier(width), width, signed=False)


@pytest.mark.parametrize("width", [2, 3, 4, 6])
def test_baugh_wooley_multiplier_exhaustive(width):
    verify_multiplier(
        build_baugh_wooley_multiplier(width), width, signed=True
    )


def test_eight_bit_multipliers_exact(bw8):
    verify_multiplier(bw8, 8, signed=True)
    verify_multiplier(build_array_multiplier(8), 8, signed=False)


def test_baugh_wooley_rejects_width_one():
    with pytest.raises(ValueError):
        build_baugh_wooley_multiplier(1)


def test_build_multiplier_dispatch():
    assert build_multiplier(3, signed=True).name.endswith("bw")
    assert "array" in build_multiplier(3, False, "array").name
    assert "wallace" in build_multiplier(3, False, "wallace").name
    with pytest.raises(ValueError):
        build_multiplier(3, False, "booth")


def test_multiplier_gate_counts_in_paper_range():
    """The paper quotes c = 320..490 columns for its 8-bit seeds."""
    for net in (
        build_array_multiplier(8),
        build_wallace_multiplier(8),
        build_baugh_wooley_multiplier(8),
    ):
        assert 300 <= len(net.gates) <= 490


@given(
    st.lists(
        st.lists(st.booleans(), max_size=5),
        min_size=1,
        max_size=6,
    )
)
@settings(max_examples=30, deadline=None)
def test_reduce_columns_sums_constants(bit_columns):
    """Property: reduce_columns computes the weighted column sum mod 2^n."""
    out_width = len(bit_columns) + 3
    net = Netlist(num_inputs=1)
    columns = []
    expected = 0
    for c, bits in enumerate(bit_columns):
        col = []
        for bit in bits:
            col.append(net.add_gate("CONST1" if bit else "CONST0"))
            expected += int(bit) << c
        columns.append(col)
    outs = reduce_columns(net, columns, out_width)
    net.set_outputs(outs)
    tt = truth_table(net)
    assert int(tt[0]) == expected % (1 << out_width)


def test_partial_product_columns_keep_predicate():
    net = Netlist(num_inputs=8)
    cols = partial_product_columns(net, 4, signed=False, keep=lambda i, j: False)
    assert all(not col for col in cols)


def test_partial_product_columns_unsigned_counts():
    net = Netlist(num_inputs=8)
    cols = partial_product_columns(net, 4, signed=False)
    assert sum(len(c) for c in cols) == 16
    assert len(cols[0]) == 1 and len(cols[3]) == 4


# ----------------------------------------------------------------------
# MAC
# ----------------------------------------------------------------------
def test_accumulator_width():
    assert accumulator_width(8, 9) == 16 + 4  # 3x3 kernel: ceil(log2 9) = 4
    assert accumulator_width(8, 1) == 17
    with pytest.raises(ValueError):
        accumulator_width(0, 4)


@pytest.mark.parametrize("signed", [False, True])
def test_mac_exhaustive_small(signed):
    w, n = 2, 6
    mac = build_mac(w, n, signed=signed)
    tt = truth_table(mac, signed=signed)
    size = 1 << (2 * w + n)
    v = np.arange(size)

    def dec(val, bits):
        if not signed:
            return val
        return np.where(val >= (1 << (bits - 1)), val - (1 << bits), val)

    x = dec(v & 3, 2)
    y = dec((v >> 2) & 3, 2)
    acc = dec((v >> 4) & 63, 6)
    ref = acc + x * y
    wrap = 1 << n
    if signed:
        ref = ((ref + wrap // 2) % wrap) - wrap // 2
    else:
        ref = ref % wrap
    assert np.array_equal(tt, ref)


def test_mac_embeds_custom_multiplier():
    from repro.baselines import build_truncated_multiplier

    core = build_truncated_multiplier(2, 1, signed=False)
    mac = build_mac(2, 5, multiplier=core, signed=False)
    tt = truth_table(mac)
    core_tt = truth_table(core)
    for v in range(1 << 9):
        x, y, acc = v & 3, (v >> 2) & 3, v >> 4
        assert tt[v] == (acc + core_tt[y * 4 + x]) % 32


def test_mac_rejects_narrow_accumulator():
    with pytest.raises(ValueError):
        build_mac(4, 6)


def test_mac_rejects_wrong_core_interface():
    bad = Netlist(num_inputs=3)
    bad.set_outputs([0])
    with pytest.raises(ValueError):
        build_mac(2, 6, multiplier=bad)


# ----------------------------------------------------------------------
# Subtractors, dividers, barrel shifters (the catalog expansion)
# ----------------------------------------------------------------------
def _unsigned_grids(width):
    v = np.arange(1 << (2 * width), dtype=np.int64)
    return v & ((1 << width) - 1), v >> width


def test_half_and_full_subtractor_truth_tables():
    net = Netlist(num_inputs=2)
    d, b = half_subtractor(net, 0, 1)
    net.set_outputs([d, b])
    # a - b over 1 bit: vector = a | (b << 1); output = d | (borrow << 1).
    assert list(truth_table(net)) == [0, 1, 3, 0]
    net = Netlist(num_inputs=3)
    d, b = full_subtractor(net, 0, 1, 2)
    net.set_outputs([d, b])
    tt = truth_table(net)
    for v in range(8):
        a, sub, bin_ = v & 1, (v >> 1) & 1, v >> 2
        diff = a - sub - bin_
        assert tt[v] == (diff & 1) | ((diff < 0) << 1)


@pytest.mark.parametrize("width", [1, 2, 3, 4, 6, 8])
def test_borrow_ripple_subtractor_exhaustive(width):
    x, y = _unsigned_grids(width)
    tt = truth_table(build_borrow_ripple_subtractor(width))
    assert np.array_equal(tt, (x - y) & ((1 << (width + 1)) - 1))


def test_subtractor_borrow_out_is_comparator():
    """The top output bit is exactly the a < b predicate."""
    width = 4
    x, y = _unsigned_grids(width)
    tt = truth_table(build_borrow_ripple_subtractor(width))
    assert np.array_equal(tt >> width, (x < y).astype(np.int64))


@pytest.mark.parametrize("width", [1, 2, 3, 4, 6, 8])
def test_restoring_divider_exhaustive(width):
    x, y = _unsigned_grids(width)
    tt = truth_table(build_restoring_divider(width))
    expect = np.where(
        y == 0, (1 << width) - 1, x // np.maximum(y, 1)
    )
    assert np.array_equal(tt, expect)


def test_divider_zero_divisor_is_all_ones():
    """The restoring array realizes x / 0 = all-ones without any gates
    dedicated to the case: a zero divisor never borrows."""
    width = 3
    tt = truth_table(build_restoring_divider(width))
    assert (tt[: 1 << width] == 7).all()  # y == 0 vectors come first


@pytest.mark.parametrize("width", [1, 2, 3, 4, 6, 8])
def test_barrel_shifter_exhaustive(width):
    x, y = _unsigned_grids(width)
    s = y & ((1 << shift_amount_bits(width)) - 1)
    tt = truth_table(build_barrel_shifter(width))
    assert np.array_equal(tt, (x << s) & ((1 << width) - 1))


def test_barrel_shifter_ignores_high_amount_bits():
    """Operand B bits above the shift amount stay outside the cone."""
    width = 4
    net = build_barrel_shifter(width)
    active = net.active_signals()
    used = {s for s in active if s < net.num_inputs}
    assert used == set(range(width + shift_amount_bits(width)))


def test_shift_amount_bits_values():
    assert [shift_amount_bits(w) for w in (1, 2, 3, 4, 5, 7, 8, 9)] == \
        [1, 1, 2, 2, 3, 3, 3, 4]
    with pytest.raises(ValueError):
        shift_amount_bits(0)


def test_new_generators_reject_nonpositive_width():
    for builder in (build_restoring_divider,
                    build_borrow_ripple_subtractor, build_barrel_shifter):
        with pytest.raises(ValueError):
            builder(0)


def test_new_generators_use_cgp_function_set():
    """Seeds must embed into chromosomes: only CGP-set gate functions."""
    from repro.core.chromosome import CGP_FUNCTION_SET

    for builder in (build_restoring_divider,
                    build_borrow_ripple_subtractor, build_barrel_shifter):
        for gate in builder(4).gates:
            assert gate.fn in CGP_FUNCTION_SET
