"""Exact arithmetic generators: adders, multipliers, MAC units."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.generators import (
    accumulator_width,
    build_array_multiplier,
    build_baugh_wooley_multiplier,
    build_mac,
    build_multiplier,
    build_ripple_carry_adder,
    build_wallace_multiplier,
    full_adder,
    half_adder,
    partial_product_columns,
    reduce_columns,
    ripple_carry_adder,
)
from repro.circuits.netlist import Netlist
from repro.circuits.simulator import truth_table
from repro.circuits.verify import (
    reference_products,
    verify_adder,
    verify_multiplier,
)


# ----------------------------------------------------------------------
# Adders
# ----------------------------------------------------------------------
def test_half_adder_truth_table():
    net = Netlist(num_inputs=2)
    s, c = half_adder(net, 0, 1)
    net.set_outputs([s, c])
    assert list(truth_table(net)) == [0, 1, 1, 2]


def test_full_adder_truth_table():
    net = Netlist(num_inputs=3)
    s, c = full_adder(net, 0, 1, 2)
    net.set_outputs([s, c])
    tt = truth_table(net)
    for v in range(8):
        ones = bin(v).count("1")
        assert tt[v] == ones


@pytest.mark.parametrize("width", [1, 2, 3, 4, 6, 8])
def test_ripple_carry_adder_exhaustive(width):
    verify_adder(build_ripple_carry_adder(width), width)


def test_ripple_carry_adder_without_carry_out():
    net = build_ripple_carry_adder(3, with_carry_out=False)
    tt = truth_table(net)
    for v in range(64):
        a, b = v & 7, v >> 3
        assert tt[v] == (a + b) % 8


def test_ripple_carry_adder_with_cin():
    net = Netlist(num_inputs=5)  # a(2) b(2) cin
    sums, cout = ripple_carry_adder(net, [0, 1], [2, 3], cin=4)
    net.set_outputs(sums + [cout])
    tt = truth_table(net)
    for v in range(32):
        a, b, cin = v & 3, (v >> 2) & 3, (v >> 4) & 1
        assert tt[v] == a + b + cin


def test_ripple_carry_adder_width_mismatch():
    net = Netlist(num_inputs=3)
    with pytest.raises(ValueError):
        ripple_carry_adder(net, [0, 1], [2])


def test_zero_width_adder_rejected():
    with pytest.raises(ValueError):
        build_ripple_carry_adder(0)


# ----------------------------------------------------------------------
# Multipliers
# ----------------------------------------------------------------------
@pytest.mark.parametrize("width", [1, 2, 3, 4, 6])
def test_array_multiplier_exhaustive(width):
    verify_multiplier(build_array_multiplier(width), width, signed=False)


@pytest.mark.parametrize("width", [1, 2, 3, 4, 6])
def test_wallace_multiplier_exhaustive(width):
    verify_multiplier(build_wallace_multiplier(width), width, signed=False)


@pytest.mark.parametrize("width", [2, 3, 4, 6])
def test_baugh_wooley_multiplier_exhaustive(width):
    verify_multiplier(
        build_baugh_wooley_multiplier(width), width, signed=True
    )


def test_eight_bit_multipliers_exact(bw8):
    verify_multiplier(bw8, 8, signed=True)
    verify_multiplier(build_array_multiplier(8), 8, signed=False)


def test_baugh_wooley_rejects_width_one():
    with pytest.raises(ValueError):
        build_baugh_wooley_multiplier(1)


def test_build_multiplier_dispatch():
    assert build_multiplier(3, signed=True).name.endswith("bw")
    assert "array" in build_multiplier(3, False, "array").name
    assert "wallace" in build_multiplier(3, False, "wallace").name
    with pytest.raises(ValueError):
        build_multiplier(3, False, "booth")


def test_multiplier_gate_counts_in_paper_range():
    """The paper quotes c = 320..490 columns for its 8-bit seeds."""
    for net in (
        build_array_multiplier(8),
        build_wallace_multiplier(8),
        build_baugh_wooley_multiplier(8),
    ):
        assert 300 <= len(net.gates) <= 490


@given(
    st.lists(
        st.lists(st.booleans(), max_size=5),
        min_size=1,
        max_size=6,
    )
)
@settings(max_examples=30, deadline=None)
def test_reduce_columns_sums_constants(bit_columns):
    """Property: reduce_columns computes the weighted column sum mod 2^n."""
    out_width = len(bit_columns) + 3
    net = Netlist(num_inputs=1)
    columns = []
    expected = 0
    for c, bits in enumerate(bit_columns):
        col = []
        for bit in bits:
            col.append(net.add_gate("CONST1" if bit else "CONST0"))
            expected += int(bit) << c
        columns.append(col)
    outs = reduce_columns(net, columns, out_width)
    net.set_outputs(outs)
    tt = truth_table(net)
    assert int(tt[0]) == expected % (1 << out_width)


def test_partial_product_columns_keep_predicate():
    net = Netlist(num_inputs=8)
    cols = partial_product_columns(net, 4, signed=False, keep=lambda i, j: False)
    assert all(not col for col in cols)


def test_partial_product_columns_unsigned_counts():
    net = Netlist(num_inputs=8)
    cols = partial_product_columns(net, 4, signed=False)
    assert sum(len(c) for c in cols) == 16
    assert len(cols[0]) == 1 and len(cols[3]) == 4


# ----------------------------------------------------------------------
# MAC
# ----------------------------------------------------------------------
def test_accumulator_width():
    assert accumulator_width(8, 9) == 16 + 4  # 3x3 kernel: ceil(log2 9) = 4
    assert accumulator_width(8, 1) == 17
    with pytest.raises(ValueError):
        accumulator_width(0, 4)


@pytest.mark.parametrize("signed", [False, True])
def test_mac_exhaustive_small(signed):
    w, n = 2, 6
    mac = build_mac(w, n, signed=signed)
    tt = truth_table(mac, signed=signed)
    size = 1 << (2 * w + n)
    v = np.arange(size)

    def dec(val, bits):
        if not signed:
            return val
        return np.where(val >= (1 << (bits - 1)), val - (1 << bits), val)

    x = dec(v & 3, 2)
    y = dec((v >> 2) & 3, 2)
    acc = dec((v >> 4) & 63, 6)
    ref = acc + x * y
    wrap = 1 << n
    if signed:
        ref = ((ref + wrap // 2) % wrap) - wrap // 2
    else:
        ref = ref % wrap
    assert np.array_equal(tt, ref)


def test_mac_embeds_custom_multiplier():
    from repro.baselines import build_truncated_multiplier

    core = build_truncated_multiplier(2, 1, signed=False)
    mac = build_mac(2, 5, multiplier=core, signed=False)
    tt = truth_table(mac)
    core_tt = truth_table(core)
    for v in range(1 << 9):
        x, y, acc = v & 3, (v >> 2) & 3, v >> 4
        assert tt[v] == (acc + core_tt[y * 4 + x]) % 32


def test_mac_rejects_narrow_accumulator():
    with pytest.raises(ValueError):
        build_mac(4, 6)


def test_mac_rejects_wrong_core_interface():
    bad = Netlist(num_inputs=3)
    bad.set_outputs([0])
    with pytest.raises(ValueError):
        build_mac(2, 6, multiplier=bad)
