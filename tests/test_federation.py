"""Sharded builds + multi-store federation: the equivalence battery.

The claims under test, each enforced as an equality (not a similarity):

* **Shard ≡ resume**: `build_library(..., shard=(i, n))` excludes
  cells through the same ``skip_cell`` hook resume uses, and
  ``grid_front`` allocates the *full* grid's SeedSequence children
  before filtering — so every shard's rows are bit-identical (all
  columns, including phenotype signatures and chromosome text) to the
  corresponding cells of an unsharded build.
* **Merge = Pareto union**: ``merge_stores`` re-inserts rows under the
  store's own admission rule in a canonical offer order, making it
  idempotent, order-independent, and — over a full shard set —
  row-identical to the single-process build.
* **Federation ≡ merge**: ``FederatedStore`` computes the same union
  online; every read (``select``/``count``/``groups``/
  ``completed_cells``) equals the offline merge's, so ``/v1/front``
  served over two mounted stores equals the front of their merge.
* **Crash robustness**: a killed shard resumes bit-identically (PR 3
  harness); a merge killed mid-write leaves the destination absent or
  previous, never torn (temp file + atomic rename).
"""

import json
import os
import sqlite3
import threading
import urllib.error
import urllib.request

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.library import (
    BuildSpec,
    DesignRecord,
    DesignStore,
    FederatedStore,
    build_library,
    front,
    merge_stores,
    parse_shard,
    pareto_union,
)
from repro.library.federation import _offer_order_key, _union_cells
from repro.library.store import filter_records, record_order_key
from repro.serve import ServeContext, create_server, handle, record_to_json

W = 3
SPEC = BuildSpec(
    components=("multiplier", "adder"),
    metrics=("wmed",),
    widths=(W,),
    thresholds_percent=(1.0, 2.0, 5.0),
    generations=40,
    seed=13,
)
N_CELLS = len(SPEC.cells())


def _build(path, spec=SPEC, shard=None):
    store = DesignStore(str(path))
    report = build_library(
        store, spec, max_workers=1, executor="thread", shard=shard
    )
    return store, report


@pytest.fixture(scope="module")
def grid(tmp_path_factory):
    """One unsharded build + its 2-way and 4-way shard sets.

    Everything in this module that needs built stores shares these —
    the builds are the expensive part, the equivalence checks are
    cheap.
    """
    root = tmp_path_factory.mktemp("federation")
    single, single_report = _build(root / "single.sqlite")
    two = [
        _build(root / f"two{i}.sqlite", shard=(i, 2))[0] for i in range(2)
    ]
    four = [
        _build(root / f"four{i}.sqlite", shard=(i, 4))[0] for i in range(4)
    ]
    return {
        "root": root,
        "single": single,
        "single_report": single_report,
        "two": two,
        "four": four,
    }


# ----------------------------------------------------------------------
# parse_shard
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "text,expected",
    [("1/1", (0, 1)), ("1/4", (0, 4)), ("2/4", (1, 4)), ("4/4", (3, 4)),
     (" 3/8 ", (2, 8))],
)
def test_parse_shard_accepts(text, expected):
    assert parse_shard(text) == expected


@pytest.mark.parametrize(
    "bad", ["0/4", "5/4", "-1/4", "1/0", "1/-2", "x/y", "3", "1/2/3",
            "1.5/4", ""],
)
def test_parse_shard_rejects(bad):
    with pytest.raises(ValueError):
        parse_shard(bad)


def test_build_rejects_out_of_range_shard(tmp_path):
    store = DesignStore(str(tmp_path / "s.sqlite"))
    with pytest.raises(ValueError, match="shard index"):
        build_library(store, SPEC, shard=(4, 4))


# ----------------------------------------------------------------------
# Shard partition properties (no evolution needed)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("count", [1, 2, 3, 4, 7, N_CELLS, N_CELLS + 3])
def test_shard_partition_covers_grid_exactly_once(count):
    cells = SPEC.cells()
    assignment = [
        {c for k, c in enumerate(cells) if k % count == index}
        for index in range(count)
    ]
    union = set().union(*assignment)
    assert union == set(cells)
    assert sum(len(s) for s in assignment) == len(cells)  # disjoint


def test_shard_reports_partition_cell_counts(grid):
    reports_total = sum(s.completed_cells() != {} for s in grid["four"])
    assert reports_total == 4
    per_shard = [len(s.completed_cells()) for s in grid["four"]]
    assert sum(per_shard) == N_CELLS
    # Modular assignment balances within one cell.
    assert max(per_shard) - min(per_shard) <= 1


# ----------------------------------------------------------------------
# Tentpole equivalence: sharded + merged ≡ single build
# ----------------------------------------------------------------------
def test_shard_rows_are_bit_identical_to_single_build(grid):
    """Bit-identity per shard: wherever a shard and the single build
    both kept a design (same content address), every column — down to
    the chromosome text and evaluation count — is identical, because
    the full-grid SeedSequence allocation means sharding never
    perturbs a cell's RNG stream.  (A shard row the single build
    *pruned* under Pareto is legitimate; value disagreement is not.)
    """
    single_by_key = {
        (r.design_id, r.group()): r for r in grid["single"].select()
    }
    overlap = 0
    for shard_store in grid["four"]:
        for r in shard_store.select():
            match = single_by_key.get((r.design_id, r.group()))
            if match is not None and \
                    match.threshold_percent == r.threshold_percent:
                assert r == match
                overlap += 1
    assert overlap > 0
    # And every cell id of every shard is a cell id of the single build.
    single_cells = set(grid["single"].completed_cells())
    for shard_store in grid["four"]:
        assert set(shard_store.completed_cells()) <= single_cells


@pytest.mark.parametrize("shard_set", ["two", "four"])
def test_sharded_merge_row_identical_to_single_build(grid, shard_set,
                                                     tmp_path):
    out = str(tmp_path / "merged.sqlite")
    merge_stores(out, [s.path for s in grid[shard_set]])
    merged = DesignStore(out)
    assert merged.select() == grid["single"].select()
    assert merged.count() == grid["single"].count()
    assert merged.groups() == grid["single"].groups()
    assert set(merged.completed_cells()) \
        == set(grid["single"].completed_cells())


def test_sharded_build_resumes_into_full_build(grid, tmp_path):
    """A shard store resumed *without* the shard argument finishes the
    remaining cells and equals the unsharded build — sharding is
    literally the resume path."""
    import shutil

    db = str(tmp_path / "grow.sqlite")
    shutil.copy(grid["four"][1].path, db)
    store = DesignStore(db)
    before = len(store.completed_cells())
    report = build_library(store, SPEC, max_workers=1, executor="thread")
    assert report.cells_skipped == before
    assert store.select() == grid["single"].select()


def test_shard_report_counts_only_own_cells(grid):
    assert grid["single_report"].cells_total == N_CELLS
    for i, s in enumerate(grid["four"]):
        report = build_library(
            s, SPEC, max_workers=1, executor="thread", shard=(i, 4)
        )
        assert report.cells_total == len(s.completed_cells())
        assert report.cells_run == 0  # second run resumes everything
        assert report.cells_skipped == report.cells_total


# ----------------------------------------------------------------------
# Merge semantics
# ----------------------------------------------------------------------
def test_merge_idempotent(grid, tmp_path):
    a = grid["two"][0].path
    out1 = str(tmp_path / "m1.sqlite")
    out2 = str(tmp_path / "m2.sqlite")
    merge_stores(out1, [a])
    merge_stores(out2, [a, a])
    assert DesignStore(out1).select() == DesignStore(out2).select()
    assert DesignStore(out1).select() == grid["two"][0].select()
    # merging a merge output with itself changes nothing
    report = merge_stores(out1, [out1])
    assert report.added == 0 or DesignStore(out1).select() \
        == DesignStore(out2).select()
    assert DesignStore(out1).select() == grid["two"][0].select()


def test_merge_commutative(grid, tmp_path):
    a, b = (s.path for s in grid["two"])
    ab = str(tmp_path / "ab.sqlite")
    ba = str(tmp_path / "ba.sqlite")
    merge_stores(ab, [a, b])
    merge_stores(ba, [b, a])
    assert DesignStore(ab).select() == DesignStore(ba).select()
    assert DesignStore(ab).completed_cells() \
        == DesignStore(ba).completed_cells()


def test_merge_associative_across_groupings(grid, tmp_path):
    s = [st_.path for st_ in grid["four"]]
    left = str(tmp_path / "left.sqlite")    # merge(merge(0,1), 2, 3)
    inner = str(tmp_path / "inner.sqlite")
    merge_stores(inner, s[:2])
    merge_stores(left, [inner] + s[2:])
    flat = str(tmp_path / "flat.sqlite")
    merge_stores(flat, s)
    assert DesignStore(left).select() == DesignStore(flat).select()


def test_merge_into_existing_store_accumulates(grid, tmp_path):
    out = str(tmp_path / "acc.sqlite")
    merge_stores(out, [grid["two"][0].path])
    merge_stores(out, [grid["two"][1].path])  # existing out joins in
    assert DesignStore(out).select() == grid["single"].select()


def test_merge_missing_input_raises_and_creates_nothing(tmp_path):
    out = str(tmp_path / "out.sqlite")
    with pytest.raises(ValueError, match="no design store"):
        merge_stores(out, [str(tmp_path / "nope.sqlite")])
    assert not os.path.exists(out)


def test_merge_requires_inputs(tmp_path):
    with pytest.raises(ValueError, match="at least one"):
        merge_stores(str(tmp_path / "out.sqlite"), [])


def test_merge_schema_version_checked(grid, tmp_path):
    bad = str(tmp_path / "bad.sqlite")
    DesignStore(bad)
    with sqlite3.connect(bad) as conn:
        conn.execute("PRAGMA user_version = 999")
    out = str(tmp_path / "out.sqlite")
    with pytest.raises(ValueError, match="schema version"):
        merge_stores(out, [grid["two"][0].path, bad])
    assert not os.path.exists(out)


def test_merge_report_counters(grid, tmp_path):
    out = str(tmp_path / "m.sqlite")
    report = merge_stores(out, [s.path for s in grid["four"]])
    assert report.inputs == 4
    assert report.rows_offered == sum(s.count() for s in grid["four"])
    assert report.added == DesignStore(out).count()
    assert report.added + report.dominated + report.duplicate \
        == report.rows_offered
    assert report.cells == N_CELLS
    assert report.out_designs == report.added
    assert str(report)  # cosmetic line renders


def test_merge_preserves_cell_checkpoint_fields(grid, tmp_path):
    out = str(tmp_path / "m.sqlite")
    merge_stores(out, [s.path for s in grid["four"]])
    merged_cells = DesignStore(out).completed_cells()
    expected = {}
    for s in grid["four"]:
        expected.update(s.completed_cells())
    assert merged_cells == expected


# ----------------------------------------------------------------------
# Merge atomicity (kill mid-transaction)
# ----------------------------------------------------------------------
def _failing_merge(monkeypatch, out, inputs, fail_after):
    """Run merge_stores with DesignStore.add dying mid-way."""
    calls = {"n": 0}
    original = DesignStore.add

    def dying_add(self, record):
        calls["n"] += 1
        if calls["n"] > fail_after:
            raise RuntimeError("killed mid-merge")
        return original(self, record)

    monkeypatch.setattr(DesignStore, "add", dying_add)
    with pytest.raises(RuntimeError, match="killed mid-merge"):
        merge_stores(out, inputs)
    monkeypatch.setattr(DesignStore, "add", original)


def test_killed_merge_leaves_no_output(grid, tmp_path, monkeypatch):
    out = str(tmp_path / "torn.sqlite")
    _failing_merge(
        monkeypatch, out, [s.path for s in grid["two"]], fail_after=1
    )
    assert not os.path.exists(out)
    # the temp file is cleaned up too
    assert [f for f in os.listdir(tmp_path) if "merge" in f] == []


def test_killed_merge_leaves_previous_output_intact(grid, tmp_path,
                                                    monkeypatch):
    out = str(tmp_path / "prev.sqlite")
    merge_stores(out, [grid["two"][0].path])
    before = DesignStore(out).select()
    _failing_merge(
        monkeypatch, out, [grid["two"][1].path], fail_after=1
    )
    assert DesignStore(out).select() == before  # absent-or-complete: complete


def test_completed_merge_is_complete(grid, tmp_path):
    """After a successful merge the output answers queries immediately
    (no journal replay, no partial rows)."""
    out = str(tmp_path / "done.sqlite")
    merge_stores(out, [s.path for s in grid["two"]])
    merged = DesignStore(out)
    assert merged.select() == grid["single"].select()
    got = front(merged, "multiplier", W, "wmed")
    want = front(grid["single"], "multiplier", W, "wmed")
    assert got == want


# ----------------------------------------------------------------------
# pareto_union properties
# ----------------------------------------------------------------------
def _rec(design_id, error, area, power=5.0, pdp=2.0, metric="wmed",
         threshold=1.0, **kw):
    defaults = dict(
        component="multiplier", width=3, signed=False, metric=metric,
        dist="Du", threshold_percent=threshold, error=error, area=area,
        power_uw=power, delay_ps=100.0, pdp=pdp, wmed=error, med=error,
        mred=error, error_rate=0.5, worst_case=3, bias=0.0, gates=12,
        chromosome="{stub}", name="r",
    )
    defaults.update(kw)
    return DesignRecord(design_id=design_id, **defaults)


# A design_id is a content address: within a group it determines the
# objective vector (and two records may still share a vector under
# distinct ids — the equal-vector duplicate rule).  The strategy must
# model that, or hypothesis explores states the pipeline cannot reach
# (one id with two vectors), where no admission rule is associative.
_VECTORS = {
    "a" * 32: (0.01, 10.0, 5.0, 2.0),
    "b" * 32: (0.02, 11.0, 6.0, 3.0),
    "c" * 32: (0.005, 9.0, 4.0, 1.0),
    "d" * 32: (0.03, 5.0, 3.0, 0.5),
    "e" * 32: (0.01, 10.0, 5.0, 2.0),  # a's vector under another id
}


def _addressed(design_id, threshold):
    error, area, power, pdp = _VECTORS[design_id]
    return _rec(design_id, error, area, power=power, pdp=pdp,
                threshold=threshold, name=f"n{threshold:g}")


_records = st.builds(
    _addressed,
    design_id=st.sampled_from(sorted(_VECTORS)),
    threshold=st.sampled_from([1.0, 2.0]),
)


@settings(max_examples=60, deadline=None)
@given(st.lists(_records, max_size=12))
def test_pareto_union_is_idempotent_and_order_independent(records):
    once = pareto_union(records)
    assert pareto_union(once) == once          # stable point
    assert pareto_union(records[::-1]) == once  # order-independent
    assert pareto_union(records + records) == once  # duplication-proof
    # output is in store select order
    assert once == sorted(once, key=record_order_key)
    # and per-group non-dominated
    for a in once:
        for b in once:
            if a is not b and a.group() == b.group():
                assert not all(
                    x <= y for x, y in zip(a.objectives(), b.objectives())
                )


@settings(max_examples=40, deadline=None)
@given(st.lists(_records, max_size=8), st.lists(_records, max_size=8))
def test_pareto_union_is_associative(xs, ys):
    assert pareto_union(pareto_union(xs) + pareto_union(ys)) \
        == pareto_union(xs + ys)


def test_pareto_union_respects_store_admission(tmp_path):
    """union(records) == what a store ends up holding after offering
    the same records in the canonical order."""
    records = [
        _rec("a" * 32, 0.01, 10.0),
        _rec("b" * 32, 0.02, 11.0, power=6, pdp=3),   # dominated
        _rec("c" * 32, 0.005, 9.0, power=4, pdp=1),   # dominates a
        _rec("d" * 32, 0.03, 5.0, power=3, pdp=0.5),  # trade-off
        _rec("c" * 32, 0.005, 9.0, power=4, pdp=1),   # duplicate
    ]
    store = DesignStore(str(tmp_path / "s.sqlite"))
    for r in sorted(records, key=_offer_order_key):
        store.add(r)
    assert pareto_union(records) == store.select()


def test_union_cells_prefers_min_status_row():
    row_a = ("cell1", "multiplier", "wmed", 3, "Du", 1.0,
             "duplicate", "a" * 32, 1.0)
    row_b = ("cell1", "multiplier", "wmed", 3, "Du", 1.0,
             "added", "a" * 32, 2.0)
    assert _union_cells([row_a, row_b]) == [row_b]
    assert _union_cells([row_b, row_a]) == [row_b]
    assert _union_cells([row_a]) == [row_a]


# ----------------------------------------------------------------------
# FederatedStore ≡ offline merge
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def federated(grid, tmp_path_factory):
    out = str(tmp_path_factory.mktemp("fedmerge") / "merged.sqlite")
    merge_stores(out, [s.path for s in grid["two"]])
    return FederatedStore([s.path for s in grid["two"]]), DesignStore(out)


def test_federated_select_equals_merge(federated):
    fed, merged = federated
    assert fed.select() == merged.select()


@pytest.mark.parametrize(
    "kwargs",
    [
        {"component": "multiplier"},
        {"component": "adder"},
        {"width": W},
        {"metric": "wmed"},
        {"max_error": 0.02},
        {"component": "multiplier", "max_error": 0.05},
        {"signed": False},
        {"signed": True},
        {"dist": "Du"},
        {"component": "nonexistent"},
    ],
)
def test_federated_filters_equal_merge(federated, kwargs):
    fed, merged = federated
    assert fed.select(**kwargs) == merged.select(**kwargs)


def test_federated_design_id_filters_apply_after_reduction(federated):
    fed, merged = federated
    for r in merged.select():
        assert fed.select(design_id=r.design_id) \
            == merged.select(design_id=r.design_id)
        prefix = r.design_id[:6]
        assert fed.select(design_id_prefix=prefix) \
            == merged.select(design_id_prefix=prefix)
        assert fed.get(r.design_id) == merged.get(r.design_id)


def test_federated_count_groups_cells_equal_merge(federated):
    fed, merged = federated
    assert fed.count() == merged.count()
    assert fed.groups() == merged.groups()
    assert set(fed.completed_cells()) == set(merged.completed_cells())


def test_federated_query_layer_runs_unchanged(federated):
    fed, merged = federated
    assert front(fed, "multiplier", W, "wmed") \
        == front(merged, "multiplier", W, "wmed")


def test_federated_state_token_is_tuple_of_per_file_tokens(grid):
    paths = [s.path for s in grid["two"]]
    fed = FederatedStore(paths)
    token = fed.state_token()
    assert len(token) == 2
    for part, path in zip(token, paths):
        stat = os.stat(path)
        assert part == (stat.st_mtime_ns, stat.st_size)


def test_federated_is_read_only(grid):
    fed = FederatedStore([s.path for s in grid["two"]])
    with pytest.raises(TypeError, match="read-only"):
        fed.add(_rec("a" * 32, 0.01, 10.0))
    with pytest.raises(TypeError, match="read-only"):
        fed.mark_cell("x", "multiplier", "wmed", 3, "Du", 1.0, "added", "a")


def test_federated_requires_a_store():
    with pytest.raises(ValueError, match="at least one"):
        FederatedStore([])


def test_federated_schema_version_checked(tmp_path):
    bad = str(tmp_path / "bad.sqlite")
    DesignStore(bad)
    with sqlite3.connect(bad) as conn:
        conn.execute("PRAGMA user_version = 999")
    with pytest.raises(ValueError, match="schema version"):
        FederatedStore([bad])


def test_federated_memoizes_reduction_until_a_store_moves(grid, tmp_path):
    import shutil

    a = str(tmp_path / "a.sqlite")
    b = str(tmp_path / "b.sqlite")
    shutil.copy(grid["two"][0].path, a)
    shutil.copy(grid["two"][1].path, b)
    fed = FederatedStore([a, b])
    first = fed._rows()
    assert fed._rows() is first  # memo hit: same list object
    # writing to the SECOND store invalidates the reduction
    DesignStore(b).add(_rec("f" * 32, 1e-9, 0.001, power=0.001, pdp=0.001))
    second = fed._rows()
    assert second is not first
    assert "f" * 32 in {r.design_id for r in second}


def test_federated_accepts_store_objects_and_paths(grid):
    by_path = FederatedStore([s.path for s in grid["two"]])
    by_obj = FederatedStore(list(grid["two"]))
    assert by_path.select() == by_obj.select()
    assert by_path.paths == by_obj.paths
    assert by_path.path == "+".join(by_path.paths)


def test_filter_records_matches_store_select(grid):
    store = grid["single"]
    rows = store.select()
    assert filter_records(rows) == rows
    assert filter_records(rows, component="adder") \
        == store.select(component="adder")
    assert filter_records(rows, max_error=0.02) \
        == store.select(max_error=0.02)


# ----------------------------------------------------------------------
# Served federation: /v1/front over two mounted stores == offline merge
# ----------------------------------------------------------------------
def _http_get(base, path):
    try:
        with urllib.request.urlopen(base + path) as resp:
            return resp.status, json.loads(resp.read()), dict(resp.headers)
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read()), dict(err.headers)


@pytest.fixture(scope="module")
def served_federation(grid):
    server = create_server(
        [s.path for s in grid["two"]], port=0, quiet=True
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server, f"http://127.0.0.1:{server.server_port}"
    server.shutdown()
    server.server_close()


def test_served_front_equals_offline_merge_front(served_federation,
                                                 federated):
    _, merged = federated
    _, base = served_federation
    status, body, _ = _http_get(
        base, f"/v1/front?width={W}&component=multiplier"
    )
    assert status == 200
    want = front(merged, "multiplier", W, "wmed")
    assert [d["design_id"] for d in body["designs"]] \
        == [r.design_id for r in want]
    assert body["count"] == len(want)
    # full record equality through the wire, not just ids
    assert body["designs"] == json.loads(
        json.dumps([record_to_json(r) for r in want])
    )


def test_served_front_equals_single_build_front(served_federation, grid):
    """Transitively: federation over a full shard set serves exactly
    what a single-process build would."""
    _, base = served_federation
    status, body, _ = _http_get(
        base, f"/v1/front?width={W}&component=adder"
    )
    assert status == 200
    want = front(grid["single"], "adder", W, "wmed")
    assert body["designs"] == json.loads(
        json.dumps([record_to_json(r) for r in want])
    )


def test_served_healthz_lists_all_mounted_stores(served_federation, grid):
    _, base = served_federation
    status, body, _ = _http_get(base, "/healthz")
    assert status == 200
    assert [s["path"] for s in body["stores"]] \
        == [s.path for s in grid["two"]]
    for entry in body["stores"]:
        stat = os.stat(entry["path"])
        assert entry["state"] == [stat.st_mtime_ns, stat.st_size]
    assert body["designs"] == grid["single"].count()
    assert body["store"] == "+".join(s.path for s in grid["two"])


def test_single_store_healthz_has_one_stores_entry(grid):
    ctx = ServeContext(store=grid["single"])
    body = handle(ctx, "GET", "/healthz").json()
    assert len(body["stores"]) == 1
    assert body["stores"][0]["path"] == grid["single"].path


# ----------------------------------------------------------------------
# Snapshot + ETag invalidation across a multi-store mount
# ----------------------------------------------------------------------
def _fed_ctx(tmp_path, grid):
    import shutil

    a = str(tmp_path / "a.sqlite")
    b = str(tmp_path / "b.sqlite")
    shutil.copy(grid["two"][0].path, a)
    shutil.copy(grid["two"][1].path, b)
    return ServeContext(store=FederatedStore([a, b])), a, b


def test_writing_second_store_invalidates_snapshot_and_etag(grid,
                                                            tmp_path):
    """The PR's latent-bug regression: the freshness token must cover
    *every* mounted file, so a write to the second store flips the
    snapshot, the ETag and the response body."""
    ctx, _a, b = _fed_ctx(tmp_path, grid)
    query = f"width={W}&component=multiplier"
    first = handle(ctx, "GET", "/v1/front", query)
    etag1 = dict(first.headers)["ETag"]
    snap1 = ctx.snapshot()
    # strictly better than everything: admitted into the union
    DesignStore(b).add(_rec("f" * 32, 1e-9, 0.001, power=1e-3, pdp=1e-3))
    second = handle(ctx, "GET", "/v1/front", query)
    etag2 = dict(second.headers)["ETag"]
    assert ctx.snapshot() is not snap1
    assert etag2 != etag1
    assert "f" * 32 in [
        d["design_id"] for d in second.json()["designs"]
    ]
    # the old validator no longer revalidates
    third = handle(ctx, "GET", "/v1/front", query,
                   headers={"If-None-Match": etag1})
    assert third.status == 200
    fourth = handle(ctx, "GET", "/v1/front", query,
                    headers={"If-None-Match": etag2})
    assert fourth.status == 304


def test_writing_first_store_also_invalidates(grid, tmp_path):
    ctx, a, _b = _fed_ctx(tmp_path, grid)
    query = f"width={W}&component=multiplier"
    etag1 = dict(handle(ctx, "GET", "/v1/front", query).headers)["ETag"]
    DesignStore(a).add(_rec("e" * 32, 1e-9, 0.002, power=2e-3, pdp=2e-3))
    etag2 = dict(handle(ctx, "GET", "/v1/front", query).headers)["ETag"]
    assert etag1 != etag2


def test_federated_snapshot_state_is_the_combined_token(grid, tmp_path):
    ctx, _, _ = _fed_ctx(tmp_path, grid)
    snap = ctx.snapshot()
    assert snap.state == ctx.store.state_token()
    assert len(snap.state) == 2
    assert all(len(part) == 2 for part in snap.state)


def test_wire_cache_invalidates_on_second_store_write(grid, tmp_path):
    """HTTP-level twin of the snapshot regression: a federated server's
    preserialised wire cache drops its memo when the second store
    moves."""
    import shutil

    a = str(tmp_path / "a.sqlite")
    b = str(tmp_path / "b.sqlite")
    shutil.copy(grid["two"][0].path, a)
    shutil.copy(grid["two"][1].path, b)
    server = create_server([a, b], port=0, quiet=True)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        base = f"http://127.0.0.1:{server.server_port}"
        path = f"/v1/front?width={W}&component=multiplier"
        _http_get(base, path)           # slow path, fills the wire cache
        _, body1, h1 = _http_get(base, path)  # wire-cache hit
        DesignStore(b).add(
            _rec("f" * 32, 1e-9, 0.001, power=1e-3, pdp=1e-3)
        )
        _, body2, h2 = _http_get(base, path)
        assert h2["ETag"] != h1["ETag"]
        assert "f" * 32 in [d["design_id"] for d in body2["designs"]]
    finally:
        server.shutdown()
        server.server_close()


# ----------------------------------------------------------------------
# Crash robustness: killed shard build resumes bit-identically
# ----------------------------------------------------------------------
def test_killed_shard_build_resumes_bit_identical(grid, tmp_path):
    """PR 3's resume harness applied to a shard: kill shard 0 of 2
    after its first checkpoint, resume, and the store equals an
    uninterrupted shard build cell for cell."""

    class Kill(Exception):
        pass

    seen = []

    def killer(cell, status):
        seen.append(cell)
        raise Kill  # die after the first checkpointed cell

    killed = DesignStore(str(tmp_path / "killed.sqlite"))
    with pytest.raises(Kill):
        build_library(killed, SPEC, max_workers=1, executor="thread",
                      progress=killer, shard=(0, 2))
    assert len(killed.completed_cells()) == 1
    resumed = []
    report = build_library(
        killed, SPEC, max_workers=1, executor="thread",
        progress=lambda cell, status: resumed.append(cell), shard=(0, 2),
    )
    assert report.cells_run == len(resumed)
    assert report.cells_skipped == 1
    assert seen[0] not in resumed
    assert killed.select() == grid["two"][0].select()
    assert killed.completed_cells() == grid["two"][0].completed_cells()


def test_killed_shard_merge_still_equals_single_build(grid, tmp_path):
    """End-to-end: kill + resume a shard, merge the shard set, compare
    to the unsharded build."""

    class Kill(Exception):
        pass

    hits = []

    def killer(cell, status):
        hits.append(cell)
        if len(hits) == 1:
            raise Kill

    killed = DesignStore(str(tmp_path / "k0.sqlite"))
    with pytest.raises(Kill):
        build_library(killed, SPEC, max_workers=1, executor="thread",
                      progress=killer, shard=(1, 2))
    build_library(killed, SPEC, max_workers=1, executor="thread",
                  shard=(1, 2))
    out = str(tmp_path / "merged.sqlite")
    merge_stores(out, [grid["two"][0].path, killed.path])
    assert DesignStore(out).select() == grid["single"].select()


# ----------------------------------------------------------------------
# CLI surfaces
# ----------------------------------------------------------------------
def test_cli_merge_round_trip(grid, tmp_path, capsys):
    from repro.cli import main

    out = str(tmp_path / "cli-merged.sqlite")
    code = main(["library", "merge", out]
                + [s.path for s in grid["two"]])
    assert code == 0
    assert "merged 2 stores" in capsys.readouterr().out
    assert DesignStore(out).select() == grid["single"].select()


def test_cli_merge_quiet(grid, tmp_path, capsys):
    from repro.cli import main

    out = str(tmp_path / "q.sqlite")
    assert main(["library", "merge", "--quiet", out,
                 grid["two"][0].path]) == 0
    assert capsys.readouterr().out == ""


def test_cli_merge_missing_input_is_one_line_error(tmp_path):
    from repro.cli import main

    with pytest.raises(SystemExit, match="no design store"):
        main(["library", "merge", str(tmp_path / "o.sqlite"),
              str(tmp_path / "missing.sqlite")])


def test_cli_build_rejects_bad_shard(tmp_path):
    from repro.cli import main

    with pytest.raises(SystemExit, match="shard"):
        main(["library", "build", "--db", str(tmp_path / "s.sqlite"),
              "--shard", "9/4", "--quiet"])


def test_cli_build_shard_matches_library_api(grid, tmp_path):
    from repro.cli import main

    db = str(tmp_path / "cli-shard.sqlite")
    code = main([
        "library", "build", "--db", db,
        "--components", "multiplier,adder", "--metrics", "wmed",
        "--widths", str(W), "--thresholds", "1,2,5",
        "--generations", "40", "--seed", "13", "--unsigned",
        "--executor", "thread", "--max-workers", "1",
        "--shard", "1/2", "--quiet",
    ])
    assert code == 0
    assert DesignStore(db).select() == grid["two"][0].select()


def test_cli_serve_rejects_missing_store_in_any_position(tmp_path):
    from repro.cli import main

    real = str(tmp_path / "real.sqlite")
    DesignStore(real)
    with pytest.raises(SystemExit, match="no design store"):
        main(["serve", "--db", real,
              "--db", str(tmp_path / "missing.sqlite")])
