"""Truth-table helpers: operand grids, weights, LUT matrices."""

import numpy as np
import pytest

from repro.errors import (
    exact_product_table,
    max_product_magnitude,
    operand_index_grids,
    operand_values,
    table_as_matrix,
    uniform,
    weight_matrix,
)


def test_operand_values_unsigned():
    assert list(operand_values(3, False)) == list(range(8))


def test_operand_values_signed():
    assert list(operand_values(3, True)) == [0, 1, 2, 3, -4, -3, -2, -1]


def test_operand_index_grids():
    x, y = operand_index_grids(2)
    assert list(x) == [0, 1, 2, 3] * 4
    assert list(y) == [0] * 4 + [1] * 4 + [2] * 4 + [3] * 4


def test_exact_product_table_spot_values():
    tab = exact_product_table(3, signed=True)
    # vector v: x pattern = v & 7, y pattern = v >> 3
    # x = -4 (pattern 4), y = 3 (pattern 3) -> v = 3*8+4
    assert tab[3 * 8 + 4] == -12


def test_exact_product_table_unsigned_max():
    tab = exact_product_table(4, signed=False)
    assert tab.max() == 225
    assert tab.min() == 0


def test_table_as_matrix_layout():
    tab = exact_product_table(3, signed=False)
    mat = table_as_matrix(tab, 3)
    for x in range(8):
        for y in range(8):
            assert mat[x, y] == x * y


def test_table_as_matrix_signed_patterns():
    tab = exact_product_table(3, signed=True)
    mat = table_as_matrix(tab, 3)
    # pattern 7 = -1, pattern 4 = -4
    assert mat[7, 4] == 4


def test_table_as_matrix_size_guard():
    with pytest.raises(ValueError):
        table_as_matrix(np.zeros(60), 3)


def test_weight_matrix_rows_follow_pmf():
    d = uniform(3)
    mat = weight_matrix(d)
    assert mat.shape == (8, 8)
    assert np.allclose(mat, 1 / 8)


def test_max_product_magnitude():
    assert max_product_magnitude(8, signed=False) == 255 * 255
    assert max_product_magnitude(8, signed=True) == 128 * 128
    assert max_product_magnitude(4, signed=True) == 64
