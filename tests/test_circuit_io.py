"""Netlist JSON serialization."""

import numpy as np
import pytest

from repro.circuits.generators import build_baugh_wooley_multiplier
from repro.circuits.io import (
    load_netlist,
    netlist_from_dict,
    netlist_to_dict,
    save_netlist,
)
from repro.circuits.netlist import Netlist
from repro.circuits.simulator import truth_table


def test_dict_roundtrip_preserves_function(bw4):
    data = netlist_to_dict(bw4)
    back = netlist_from_dict(data)
    assert np.array_equal(
        truth_table(back, signed=True), truth_table(bw4, signed=True)
    )
    assert back.name == bw4.name
    assert back.num_inputs == bw4.num_inputs


def test_dict_is_json_compatible(bw4):
    import json

    text = json.dumps(netlist_to_dict(bw4))
    assert isinstance(text, str)
    back = netlist_from_dict(json.loads(text))
    assert len(back.gates) == len(bw4.gates)


def test_file_roundtrip(tmp_path, bw4):
    path = tmp_path / "mult.json"
    save_netlist(bw4, str(path))
    back = load_netlist(str(path))
    assert np.array_equal(
        truth_table(back, signed=True), truth_table(bw4, signed=True)
    )


def test_from_dict_missing_keys():
    with pytest.raises(ValueError, match="missing keys"):
        netlist_from_dict({"num_inputs": 2})


def test_from_dict_rejects_invalid_structure():
    data = {
        "num_inputs": 2,
        "gates": [["AND", 0, 9]],  # forward reference
        "outputs": [2],
    }
    with pytest.raises(ValueError):
        netlist_from_dict(data)


def test_from_dict_rejects_empty_gate_entry():
    with pytest.raises(ValueError, match="empty gate"):
        netlist_from_dict({"num_inputs": 1, "gates": [[]], "outputs": [0]})


def test_from_dict_unknown_function():
    data = {"num_inputs": 2, "gates": [["MAJ", 0, 1]], "outputs": [0]}
    with pytest.raises(KeyError):
        netlist_from_dict(data)


def test_roundtrip_random_netlists_property(rng, tmp_path):
    """File round-trip is exact for arbitrary valid netlists.

    These are the persistence primitives the design library's export
    path builds on, so the contract is structural equality (gates,
    outputs, name), not just functional equivalence.
    """
    from repro.core.chromosome import CGPParams
    from repro.core.seeding import random_chromosome

    functions = (
        "AND", "OR", "XOR", "NAND", "NOR", "XNOR", "NOT", "BUF",
        "CONST0", "CONST1", "ANDN", "ORN",
    )
    path = str(tmp_path / "net.json")
    for k in range(25):
        p = CGPParams(
            num_inputs=int(rng.integers(1, 6)),
            num_outputs=int(rng.integers(1, 5)),
            columns=int(rng.integers(1, 15)),
            rows=1,
            functions=functions,
        )
        net = random_chromosome(p, rng).to_netlist(name=f"rand{k}")
        save_netlist(net, path)
        back = load_netlist(path)
        assert back.name == net.name
        assert back.num_inputs == net.num_inputs
        assert back.outputs == net.outputs
        assert [(g.fn, g.inputs) for g in back.gates] == \
            [(g.fn, g.inputs) for g in net.gates]
        if net.num_inputs <= 8:
            assert np.array_equal(
                truth_table(back, signed=False),
                truth_table(net, signed=False),
            )


def test_outputs_on_inputs_roundtrip():
    net = Netlist(num_inputs=3)
    net.set_outputs([2, 0])
    back = netlist_from_dict(netlist_to_dict(net))
    assert back.outputs == [2, 0]
