"""Fine-tuning with approximate multipliers (straight-through estimator)."""

import numpy as np
import pytest

from repro.baselines import build_truncated_multiplier
from repro.circuits.simulator import truth_table
from repro.errors import table_as_matrix
from repro.nn import (
    QuantizedModel,
    build_mlp,
    finetune,
    mnist_like,
    train,
)


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(21)
    x, y = mnist_like(1200, rng)
    x = x.reshape(len(x), -1)
    net = build_mlp(rng=np.random.default_rng(6))
    train(net, x[:900], y[:900], epochs=5, lr=0.1, rng=rng)
    lut = table_as_matrix(
        truth_table(build_truncated_multiplier(8, 7, signed=True), signed=True), 8
    )
    return net, x, y, lut


def test_finetune_recovers_accuracy(setup):
    """The Table I effect: deep approximation hurts; fine-tuning recovers."""
    net, x, y, lut = setup
    qm = QuantizedModel(net, x[:128])
    test_x, test_y = x[900:], y[900:]
    acc_exact = qm.accuracy(test_x, test_y)
    acc_before = qm.accuracy(test_x, test_y, lut=lut)
    rng = np.random.default_rng(3)
    report = finetune(
        qm, x[:900], y[:900], lut=lut, steps=80, lr=0.02, rng=rng
    )
    acc_after = qm.accuracy(test_x, test_y, lut=lut)
    assert len(report.step_losses) == 80
    # Fine-tuning must claw back accuracy lost to the approximate LUT.
    assert acc_after > acc_before
    # And land within striking distance of the exact-multiplier model.
    assert acc_after >= acc_exact - 0.15


def test_finetune_updates_float_weights(setup):
    net, x, y, lut = setup
    qm = QuantizedModel(net, x[:128])
    before = net.layers[0].params["W"].copy()
    finetune(qm, x[:200], y[:200], lut=lut, steps=5, rng=np.random.default_rng(0))
    assert not np.array_equal(before, net.layers[0].params["W"])


def test_finetune_steps_guard(setup):
    net, x, y, lut = setup
    qm = QuantizedModel(net, x[:128])
    with pytest.raises(ValueError):
        finetune(qm, x, y, lut=lut, steps=0)


def test_finetune_none_lut_tunes_quantized_model(setup):
    net, x, y, _ = setup
    qm = QuantizedModel(net, x[:128])
    report = finetune(
        qm, x[:200], y[:200], lut=None, steps=5, rng=np.random.default_rng(1)
    )
    assert all(np.isfinite(l) for l in report.step_losses)
