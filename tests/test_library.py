"""Design library subsystem: store, builder, query, export, CLI."""

import os

import numpy as np
import pytest

from repro.circuits.generators import build_multiplier
from repro.circuits.io import load_netlist
from repro.circuits.simulator import truth_table
from repro.cli import main
from repro.core.serialization import chromosome_from_string
from repro.errors.distributions import distribution_from_spec
from repro.library import (
    BuildSpec,
    DesignRecord,
    DesignStore,
    best,
    build_library,
    catalog_table,
    characterize_record,
    design_signature,
    export_records,
    front,
    record_netlist,
    record_verilog,
    stats,
)
from repro.library.builder import cell_id
from repro.library.store import SCHEMA_VERSION

# The acceptance grid: 4-bit multiplier + adder, two metrics, three
# budgets (kept fast by the short search budget).
W = 4
SPEC = BuildSpec(
    components=("multiplier", "adder"),
    metrics=("wmed", "mred"),
    widths=(W,),
    thresholds_percent=(0.5, 2.0, 5.0),
    dist="uniform",
    signed=False,
    generations=60,
    seed=7,
)


@pytest.fixture(scope="module")
def built(tmp_path_factory):
    """One completed build shared by the read-only tests."""
    db = str(tmp_path_factory.mktemp("lib") / "lib.sqlite")
    store = DesignStore(db)
    report = build_library(store, SPEC, max_workers=1, executor="thread")
    return store, report


def _record(design_id="a" * 32, error=0.01, area=10.0, power=5.0, pdp=2.0,
            metric="wmed", **kw) -> DesignRecord:
    defaults = dict(
        component="multiplier", width=3, signed=False, metric=metric,
        dist="Du", threshold_percent=1.0, error=error, area=area,
        power_uw=power, delay_ps=100.0, pdp=pdp, wmed=error, med=error,
        mred=error, error_rate=0.5, worst_case=3, bias=0.0, gates=12,
        chromosome="{stub}", name="r",
    )
    defaults.update(kw)
    return DesignRecord(design_id=design_id, **defaults)


# ----------------------------------------------------------------------
# Store
# ----------------------------------------------------------------------
def test_store_rejects_memory_db():
    with pytest.raises(ValueError, match="memory"):
        DesignStore(":memory:")


def test_store_schema_version_mismatch(tmp_path):
    db = str(tmp_path / "old.sqlite")
    DesignStore(db)
    import sqlite3

    with sqlite3.connect(db) as conn:
        conn.execute(f"PRAGMA user_version = {SCHEMA_VERSION + 1}")
    with pytest.raises(ValueError, match="schema version"):
        DesignStore(db)


def test_store_pareto_admission(tmp_path):
    store = DesignStore(str(tmp_path / "s.sqlite"))
    assert store.add(_record("a" * 32, error=0.01, area=10)) == "added"
    # Dominated on every objective: rejected.
    assert (
        store.add(_record("b" * 32, error=0.02, area=11, power=6, pdp=3))
        == "dominated"
    )
    # Dominates the incumbent: admitted, incumbent pruned.
    assert (
        store.add(_record("c" * 32, error=0.005, area=9, power=4, pdp=1))
        == "added"
    )
    assert store.count() == 1
    assert store.select()[0].design_id == "c" * 32
    # Same content address: duplicate.
    assert store.add(_record("c" * 32, error=0.005, area=9, power=4, pdp=1)) \
        == "duplicate"
    # Trade-off (worse error, better area): both kept.
    assert (
        store.add(_record("d" * 32, error=0.03, area=5, power=3, pdp=0.5))
        == "added"
    )
    assert store.count() == 2


def test_store_groups_isolate_metrics(tmp_path):
    store = DesignStore(str(tmp_path / "s.sqlite"))
    store.add(_record("a" * 32, metric="wmed", error=0.01, area=10))
    # Identical vector under another metric competes in its own group.
    assert store.add(_record("a" * 32, metric="mred", error=0.01, area=10)) \
        == "added"
    assert store.count() == 2
    assert len(store.get("a" * 32)) == 2


def test_design_signature_is_phenotype_canonical():
    net = build_multiplier(3, signed=False)
    # A gate outside the output cone must not change the address.
    padded = net.copy()
    padded.add_gate("NOR", 0, 1)
    assert design_signature(net) == design_signature(padded)
    assert design_signature(net) != design_signature(
        build_multiplier(3, signed=True)
    )


# ----------------------------------------------------------------------
# Builder
# ----------------------------------------------------------------------
def test_build_populates_queryable_store(built):
    store, report = built
    assert report.cells_total == 12
    assert report.cells_run == 12
    assert report.added == store.count() > 0
    # Every stored row is Pareto-nondominated within its group: no row
    # dominates another on (error, area, power, pdp).
    for (component, width, signed, metric, dist), _ in store.groups():
        rows = store.select(component=component, width=width, metric=metric,
                            dist=dist, signed=signed)
        for a in rows:
            for b in rows:
                if a is b:
                    continue
                assert not all(
                    x <= y for x, y in zip(a.objectives(), b.objectives())
                )


def test_second_identical_build_is_noop(built, tmp_path):
    store, _ = built
    report = build_library(store, SPEC, max_workers=1, executor="thread")
    assert report.cells_run == 0
    assert report.cells_skipped == report.cells_total == 12
    assert report.added == report.dominated == report.duplicate == 0


def test_killed_build_resumes_without_reevolving(tmp_path):
    spec = BuildSpec(components=("multiplier",), metrics=("wmed",),
                     widths=(3,), thresholds_percent=(0.5, 2.0, 5.0),
                     generations=60, seed=7)
    killed = DesignStore(str(tmp_path / "killed.sqlite"))

    class Kill(Exception):
        pass

    cells = []

    def killer(cell, status):
        cells.append(cell)
        if len(cells) == 2:
            raise Kill

    with pytest.raises(Kill):
        build_library(killed, spec, max_workers=1, executor="thread",
                      progress=killer)
    resumed_cells = []
    report = build_library(
        killed, spec, max_workers=1, executor="thread",
        progress=lambda cell, status: resumed_cells.append(cell),
    )
    # Only the cell that never checkpointed re-runs...
    assert report.cells_run == len(resumed_cells) == 1
    assert report.cells_skipped == 2
    assert resumed_cells[0] not in cells
    # ...and the resulting store is bit-identical to an uninterrupted
    # build (same SeedSequence children per cell, skipped or not).
    clean = DesignStore(str(tmp_path / "clean.sqlite"))
    build_library(clean, spec, max_workers=1, executor="thread")
    assert killed.select() == clean.select()


def test_killed_build_resumes_over_new_components(tmp_path):
    """SIGKILL-equivalent interruption of a divider + barrel-shifter
    grid resumes bit-identically to an uninterrupted build.

    The catalog-expansion regression: resume accounting (cell ids,
    SeedSequence children allocated for the full grid before skip
    filtering) must hold for the new components exactly as it does for
    the multiplier — including the hyphenated ``barrel-shifter`` name
    flowing through cell ids, store groups and progress keys.
    """
    spec = BuildSpec(components=("divider", "barrel-shifter"),
                     metrics=("wmed",), widths=(3,),
                     thresholds_percent=(1.0, 5.0), generations=50, seed=11)
    killed = DesignStore(str(tmp_path / "killed.sqlite"))

    class Kill(Exception):
        pass

    cells = []

    def killer(cell, status):
        cells.append(cell)
        if len(cells) == 2:  # die mid-grid, after 2 of 4 checkpoints
            raise Kill

    with pytest.raises(Kill):
        build_library(killed, spec, max_workers=1, executor="thread",
                      progress=killer)
    resumed = []
    report = build_library(
        killed, spec, max_workers=1, executor="thread",
        progress=lambda cell, status: resumed.append(cell),
    )
    assert report.cells_run == len(resumed) == 2
    assert report.cells_skipped == 2
    assert not set(resumed) & set(cells)
    clean = DesignStore(str(tmp_path / "clean.sqlite"))
    build_library(clean, spec, max_workers=1, executor="thread")
    assert killed.select() == clean.select()
    # Both components made it into queryable groups.
    assert {g[0][0] for g in clean.groups()} == {"divider", "barrel-shifter"}
    # And a third run over the already-complete store is a no-op.
    report = build_library(killed, spec, max_workers=1, executor="thread")
    assert report.cells_run == 0 and report.cells_skipped == 4


def test_changed_seed_changes_cells(tmp_path):
    assert cell_id("multiplier", "wmed", 3, "uniform", False, 1.0, 0, 60, 20) \
        != cell_id("multiplier", "wmed", 3, "uniform", False, 1.0, 1, 60, 20)
    # Aliases canonicalize to the same cell.
    assert cell_id("multiplier", "mre", 3, "uniform", False, 1.0, 0, 60, 20) \
        == cell_id("multiplier", "mred", 3, "uniform", False, 1.0, 0, 60, 20)


def test_cell_id_folds_in_tech_library():
    """A different technology library must re-run cells, not reuse them."""
    from dataclasses import replace

    from repro.library.builder import library_fingerprint
    from repro.tech.library import default_library

    lib = default_library()
    other = replace(lib, vdd=lib.vdd * 2)
    assert library_fingerprint(lib) == library_fingerprint(None)
    assert library_fingerprint(lib) != library_fingerprint(other)
    base = cell_id("multiplier", "wmed", 3, "uniform", False, 1.0, 0, 60, 20)
    assert base == cell_id(
        "multiplier", "wmed", 3, "uniform", False, 1.0, 0, 60, 20,
        library_fp=library_fingerprint(lib),
    )
    assert base != cell_id(
        "multiplier", "wmed", 3, "uniform", False, 1.0, 0, 60, 20,
        library_fp=library_fingerprint(other),
    )


def test_recharacterization_matches_stored_record(built):
    """The acceptance contract: stored rows reproduce bit-for-bit."""
    store, _ = built
    for record in store.select():
        dist = distribution_from_spec(
            SPEC.dist, record.width, record.signed
        )
        again = characterize_record(
            chromosome_from_string(record.chromosome),
            record.component,
            record.width,
            dist,
            record.metric,
            threshold_percent=record.threshold_percent,
            name=record.name,
            seed_key=record.seed_key,
            generations=record.generations,
            evaluations=record.evaluations,
        )
        assert again == record


def test_builder_rejects_signed_grid_with_adder(tmp_path):
    store = DesignStore(str(tmp_path / "s.sqlite"))
    spec = BuildSpec(components=("adder",), signed=True, widths=(3,),
                     thresholds_percent=(1.0,), generations=5)
    with pytest.raises(ValueError, match="unsigned"):
        build_library(store, spec, max_workers=1, executor="thread")


# ----------------------------------------------------------------------
# Query
# ----------------------------------------------------------------------
def test_best_returns_pareto_optimal_within_budget(built):
    store, _ = built
    record = best(store, "multiplier", W, "wmed", max_error_percent=5.0,
                  minimize="area")
    assert record is not None
    assert record.error <= 0.05
    # Pareto-optimal: no stored design has error and area both at least
    # as good (and one strictly better).
    for other in store.select(component="multiplier", width=W, metric="wmed"):
        if other.design_id == record.design_id:
            continue
        assert not (
            other.error <= record.error and other.area <= record.area
            and (other.error < record.error or other.area < record.area)
        )
    # Minimal area among budget-satisfying rows.
    for other in store.select(component="multiplier", width=W, metric="wmed",
                              max_error=0.05):
        assert record.area <= other.area


def test_best_respects_budget_and_cost_axis(built):
    store, _ = built
    assert best(store, "multiplier", W, "wmed",
                max_error_percent=-1.0) is None
    by_pdp = best(store, "multiplier", W, "wmed", minimize="pdp")
    assert all(
        by_pdp.pdp <= r.pdp
        for r in store.select(component="multiplier", width=W, metric="wmed")
    )
    with pytest.raises(ValueError, match="unknown cost"):
        best(store, "multiplier", W, "wmed", minimize="delay")


def test_front_is_sorted_and_nondominated(built):
    store, _ = built
    curve = front(store, "multiplier", W, "wmed")
    assert len(curve) >= 2
    errors = [r.error for r in curve]
    areas = [r.area for r in curve]
    assert errors == sorted(errors)
    # Strictly improving cost along the curve.
    assert all(a > b for a, b in zip(areas, areas[1:]))


def test_front_respects_error_budget(built):
    store, _ = built
    full = front(store, "multiplier", W, "wmed")
    budget = full[0].error_percent  # only the cheapest-error point fits
    truncated = front(
        store, "multiplier", W, "wmed", max_error_percent=budget
    )
    assert truncated == [r for r in full if r.error_percent <= budget]
    assert front(
        store, "multiplier", W, "wmed", max_error_percent=-1.0
    ) == []


def test_query_canonicalizes_aliases(built):
    store, _ = built
    canonical = best(store, "multiplier", W, "mred")
    assert canonical is not None
    # Alias spellings hit the same canonical group as the builder used.
    assert best(store, "Multiplier", W, "mre") == canonical
    assert front(store, "multiplier", W, "mre") == \
        front(store, "multiplier", W, "mred")
    with pytest.raises(ValueError, match="unknown error metric"):
        best(store, "multiplier", W, "psnr")


def test_select_by_design_id_prefix(built):
    store, _ = built
    record = store.select()[0]
    assert store.select(design_id_prefix=record.design_id[:8]) \
        == store.get(record.design_id)
    # LIKE wildcards in the prefix are literals, not patterns.
    assert store.select(design_id_prefix="%") == []


def test_stats_shape(built):
    store, _ = built
    summary = stats(store)
    assert summary["designs"] == store.count()
    assert summary["cells_completed"] == 12
    assert {g["component"] for g in summary["groups"]} == \
        {"multiplier", "adder"}


# ----------------------------------------------------------------------
# Export
# ----------------------------------------------------------------------
def test_export_emits_valid_artifacts(built, tmp_path):
    store, _ = built
    records = front(store, "multiplier", W, "wmed")
    out = str(tmp_path / "artifacts")
    written = export_records(records, out)
    assert len(written) == 2 * len(records) + 2
    for record in records:
        net = record_netlist(record)
        # The archived netlist JSON reloads to the same function.
        json_path = [p for p in written if p.endswith(".json")
                     and record.design_id[:10] in p][0]
        assert np.array_equal(
            truth_table(load_netlist(json_path), signed=False),
            truth_table(net, signed=False),
        )
        text = record_verilog(record)
        assert text.startswith("module ")
        assert text.rstrip().endswith("endmodule")
    catalog = open(os.path.join(out, "catalog.csv")).read()
    assert catalog.splitlines()[0].startswith("design_id,component,width")
    assert len(catalog.splitlines()) == len(records) + 1
    markdown = open(os.path.join(out, "catalog.md")).read()
    assert markdown.count("\n") == len(records) + 2


def test_catalog_table_formats(built):
    store, _ = built
    records = store.select()[:2]
    assert "design catalog" in catalog_table(records, fmt="text")
    assert catalog_table(records, fmt="markdown").startswith("| design_id")
    with pytest.raises(ValueError, match="unknown catalog"):
        catalog_table(records, fmt="html")


def test_export_rejects_unknown_format(built, tmp_path):
    store, _ = built
    with pytest.raises(ValueError, match="unknown export"):
        export_records(store.select()[:1], str(tmp_path), formats=("rtl",))


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_library_workflow(tmp_path, capsys):
    db = str(tmp_path / "lib.sqlite")
    code = main([
        "library", "build", "--db", db,
        "--components", "multiplier", "--metrics", "wmed",
        "--widths", "3", "--thresholds", "2,5", "--unsigned",
        "--generations", "40", "--seed", "3",
        "--max-workers", "1", "--executor", "thread",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "cells: " in out

    code = main([
        "library", "query", "--db", db, "--component", "multiplier",
        "--width", "3", "--max-error", "5", "--minimize", "area",
    ])
    assert code == 0
    table = capsys.readouterr().out
    assert "design catalog" in table
    assert "multiplier" in table

    # --dist accepts the same spec vocabulary as build (stored as "Du").
    code = main([
        "library", "query", "--db", db, "--component", "multiplier",
        "--width", "3", "--dist", "uniform",
    ])
    assert code == 0
    assert "Du" in capsys.readouterr().out

    # Expected errors surface as one-line messages, not tracebacks.
    with pytest.raises(SystemExit, match="unknown export formats"):
        main([
            "library", "export", "--db", db, "--component", "multiplier",
            "--width", "3", "--out", str(tmp_path / "bad"),
            "--formats", "rtl",
        ])

    # --front honors the error budget and the signedness filter.
    code = main([
        "library", "query", "--db", db, "--component", "multiplier",
        "--width", "3", "--front", "--max-error", "2",
    ])
    assert code == 0
    for row in capsys.readouterr().out.splitlines()[3:]:
        assert float(row.split()[7]) <= 2.0  # error_% column
    code = main([
        "library", "query", "--db", db, "--component", "multiplier",
        "--width", "3", "--signed",
    ])
    assert code == 1  # the store was built --unsigned
    capsys.readouterr()

    design_id = table.splitlines()[3].split()[0]
    code = main(["library", "show", "--db", db, design_id])
    assert code == 0
    shown = capsys.readouterr().out
    assert "chromosome: {" in shown

    out_dir = str(tmp_path / "artifacts")
    code = main([
        "library", "export", "--db", db, "--component", "multiplier",
        "--width", "3", "--front", "--out", out_dir,
    ])
    assert code == 0
    paths = capsys.readouterr().out.splitlines()
    assert any(p.endswith(".v") for p in paths)
    assert os.path.exists(os.path.join(out_dir, "catalog.md"))

    code = main(["library", "stats", "--db", db])
    assert code == 0
    assert "designs:" in capsys.readouterr().out


def test_cli_library_query_no_match(tmp_path, capsys):
    db = str(tmp_path / "lib.sqlite")
    DesignStore(db)
    code = main([
        "library", "query", "--db", db, "--component", "multiplier",
        "--width", "8",
    ])
    assert code == 1
    assert "no stored design" in capsys.readouterr().err
