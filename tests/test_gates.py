"""Gate function registry: packed vs scalar consistency and metadata."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.circuits.gates import (
    ALL_ONES,
    DEFAULT_FUNCTION_SET,
    FULL_FUNCTION_SET,
    GATE_REGISTRY,
    gate_function,
)

_TRUTH = {
    "CONST0": lambda a, b: 0,
    "CONST1": lambda a, b: 1,
    "BUF": lambda a, b: a,
    "NOT": lambda a, b: 1 - a,
    "AND": lambda a, b: a & b,
    "OR": lambda a, b: a | b,
    "XOR": lambda a, b: a ^ b,
    "NAND": lambda a, b: 1 - (a & b),
    "NOR": lambda a, b: 1 - (a | b),
    "XNOR": lambda a, b: 1 - (a ^ b),
    "ANDN": lambda a, b: a & (1 - b),
    "ORN": lambda a, b: a | (1 - b),
}


def test_registry_covers_expected_functions():
    assert set(GATE_REGISTRY) == set(_TRUTH)


def test_default_set_is_subset_of_full():
    assert set(DEFAULT_FUNCTION_SET) <= set(FULL_FUNCTION_SET)


def test_default_set_has_standard_two_input_gates():
    for name in ("AND", "OR", "XOR", "NAND", "NOR", "XNOR", "NOT", "BUF"):
        assert name in DEFAULT_FUNCTION_SET


def test_gate_function_unknown_name_raises():
    with pytest.raises(KeyError):
        gate_function("MAJ3")


@pytest.mark.parametrize("name", sorted(GATE_REGISTRY))
def test_scalar_matches_truth_table(name):
    spec = gate_function(name)
    for a in (0, 1):
        for b in (0, 1):
            assert spec.scalar(a, b) == _TRUTH[name](a, b)


@pytest.mark.parametrize("name", sorted(GATE_REGISTRY))
def test_packed_matches_scalar_on_all_bit_pairs(name):
    spec = gate_function(name)
    a = np.array([0b0101], dtype=np.uint64)  # bits: 1,0,1,0
    b = np.array([0b0011], dtype=np.uint64)  # bits: 1,1,0,0
    out = spec.packed(a, b)
    for bit in range(4):
        av = (int(a[0]) >> bit) & 1
        bv = (int(b[0]) >> bit) & 1
        assert (int(out[0]) >> bit) & 1 == spec.scalar(av, bv)


@given(
    words=st.lists(
        st.integers(min_value=0, max_value=(1 << 64) - 1),
        min_size=1,
        max_size=4,
    ),
    words2=st.lists(
        st.integers(min_value=0, max_value=(1 << 64) - 1),
        min_size=1,
        max_size=4,
    ),
)
def test_packed_bitwise_property(words, words2):
    """Packed evaluation is bitwise: every bit position is independent."""
    n = min(len(words), len(words2))
    a = np.array(words[:n], dtype=np.uint64)
    b = np.array(words2[:n], dtype=np.uint64)
    for name in ("AND", "OR", "XOR", "NAND", "NOR", "XNOR", "NOT", "ANDN"):
        spec = gate_function(name)
        out = spec.packed(a, b)
        # Spot-check bit 0 and bit 63 of every word.
        for w in range(n):
            for bit in (0, 63):
                av = (int(a[w]) >> bit) & 1
                bv = (int(b[w]) >> bit) & 1
                assert (int(out[w]) >> bit) & 1 == spec.scalar(av, bv)


def test_packed_does_not_mutate_operands():
    a = np.array([7], dtype=np.uint64)
    b = np.array([9], dtype=np.uint64)
    a0, b0 = a.copy(), b.copy()
    for name in GATE_REGISTRY:
        gate_function(name).packed(a, b)
    assert np.array_equal(a, a0)
    assert np.array_equal(b, b0)


def test_buf_copies_rather_than_aliases():
    a = np.array([3], dtype=np.uint64)
    out = gate_function("BUF").packed(a, a)
    out[0] = 0
    assert a[0] == 3


def test_const_shapes_follow_input():
    a = np.zeros(5, dtype=np.uint64)
    assert gate_function("CONST0").packed(a, a).shape == (5,)
    assert np.all(gate_function("CONST1").packed(a, a) == ALL_ONES)


def test_arity_metadata():
    assert gate_function("CONST0").arity == 0
    assert gate_function("NOT").arity == 1
    assert gate_function("AND").arity == 2
