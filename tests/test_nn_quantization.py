"""Fixed-point quantization and the quantized/approximate inference engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import exact_product_table, table_as_matrix
from repro.nn import (
    QuantizedModel,
    build_mlp,
    calibrate,
    lut_matmul,
    mnist_like,
    quantize_array,
    train,
    weight_distribution,
)


@pytest.fixture(scope="module")
def trained_mlp():
    """A small trained MLP + its data, shared across this module."""
    rng = np.random.default_rng(11)
    x, y = mnist_like(800, rng)
    x = x.reshape(len(x), -1)
    net = build_mlp(rng=np.random.default_rng(4))
    train(net, x, y, epochs=4, lr=0.1, rng=rng)
    return net, x, y


@pytest.fixture(scope="module")
def exact_lut():
    return table_as_matrix(exact_product_table(8, True), 8)


# ----------------------------------------------------------------------
# quantize_array
# ----------------------------------------------------------------------
def test_quantize_array_rounds():
    out = quantize_array(np.array([0.24, 0.26, -0.26]), scale=0.25)
    assert list(out) == [1, 1, -1]


def test_quantize_array_clips():
    out = quantize_array(np.array([100.0, -100.0]), scale=0.1)
    assert list(out) == [127, -128]


def test_quantize_array_scale_guard():
    with pytest.raises(ValueError):
        quantize_array(np.zeros(3), scale=0.0)


@given(
    st.lists(
        st.floats(min_value=-1, max_value=1, allow_nan=False),
        min_size=1,
        max_size=30,
    )
)
@settings(max_examples=40, deadline=None)
def test_quantize_roundtrip_error_bounded(values):
    """Property: |dequantized - original| <= scale/2 inside the range."""
    arr = np.array(values)
    scale = max(1e-6, float(np.abs(arr).max()) / 127)
    codes = quantize_array(arr, scale)
    back = codes * scale
    assert np.all(np.abs(back - arr) <= scale / 2 + 1e-12)


# ----------------------------------------------------------------------
# calibrate
# ----------------------------------------------------------------------
def test_calibrate_covers_weighted_layers(trained_mlp):
    net, x, _ = trained_mlp
    quants = calibrate(net, x[:64])
    assert [q.layer_index for q in quants] == [0, 2]
    for q in quants:
        assert q.w_scale > 0 and q.a_scale > 0
        assert np.abs(q.weights_q).max() <= 127


def test_calibrate_empty_guard(trained_mlp):
    net, x, _ = trained_mlp
    with pytest.raises(ValueError):
        calibrate(net, x[:0])


def test_weight_distribution_is_zero_peaked(trained_mlp):
    net, x, _ = trained_mlp
    quants = calibrate(net, x[:64])
    dist = weight_distribution(quants)
    assert dist.signed
    # Trained NN weights concentrate near zero (the paper's Fig. 6 top):
    # the +-32 band (a quarter of the code range) holds far more than a
    # quarter of the mass.
    small = dist.pmf[np.abs(dist.values) <= 32].sum()
    assert small > 0.6


def test_weight_distribution_empty_guard():
    with pytest.raises(ValueError):
        weight_distribution([])


# ----------------------------------------------------------------------
# lut_matmul
# ----------------------------------------------------------------------
def test_lut_matmul_matches_exact(rng, exact_lut):
    a = rng.integers(-128, 128, size=(13, 17))
    w = rng.integers(-128, 128, size=(17, 5))
    assert np.array_equal(lut_matmul(a, w, exact_lut), a @ w)


def test_lut_matmul_dimension_guard(exact_lut):
    with pytest.raises(ValueError):
        lut_matmul(np.zeros((2, 3), int), np.zeros((4, 2), int), exact_lut)


def test_lut_matmul_lut_shape_guard():
    with pytest.raises(ValueError):
        lut_matmul(np.zeros((2, 3), int), np.zeros((3, 2), int), np.zeros((5, 5)))


def test_lut_matmul_custom_lut_semantics():
    """A LUT that doubles every product doubles the accumulator."""
    lut = table_as_matrix(exact_product_table(4, True) * 2, 4)
    a = np.array([[1, 2], [3, -4]])
    w = np.array([[1, 0], [0, 1]])
    assert np.array_equal(lut_matmul(a, w, lut), 2 * (a @ w))


# ----------------------------------------------------------------------
# QuantizedModel
# ----------------------------------------------------------------------
def test_quantized_accuracy_close_to_float(trained_mlp):
    net, x, y = trained_mlp
    from repro.nn import accuracy

    qm = QuantizedModel(net, x[:128])
    a_float = accuracy(net, x[:400], y[:400])
    a_quant = qm.accuracy(x[:400], y[:400])
    assert abs(a_float - a_quant) < 0.05  # paper: ~0.01-0.1 % drop


def test_exact_lut_equals_integer_path(trained_mlp, exact_lut):
    net, x, _ = trained_mlp
    qm = QuantizedModel(net, x[:128])
    ref = qm.predict(x[:60])
    via_lut = qm.predict(x[:60], lut=exact_lut)
    assert np.array_equal(ref, via_lut)


def test_zero_lut_degrades_accuracy(trained_mlp):
    net, x, y = trained_mlp
    qm = QuantizedModel(net, x[:128])
    zero_lut = np.zeros((256, 256), dtype=np.int64)
    acc = qm.accuracy(x[:200], y[:200], lut=zero_lut)
    assert acc < 0.5  # all products zero: logits carry only biases


def test_requantize_tracks_weight_updates(trained_mlp):
    net, x, _ = trained_mlp
    qm = QuantizedModel(net, x[:128])
    before = qm.quants[0].weights_q.copy()
    net.layers[0].params["W"] *= 2.0
    qm.requantize()
    # Scale doubles; codes stay (roughly) the same.
    assert qm.quants[0].w_scale > 0
    assert np.abs(qm.quants[0].weights_q - before).mean() < 2.0
    net.layers[0].params["W"] /= 2.0
    qm.requantize()


def test_forward_caches_for_ste(trained_mlp, exact_lut):
    net, x, _ = trained_mlp
    qm = QuantizedModel(net, x[:128])
    logits, caches = qm.forward(x[:8], lut=exact_lut, collect_caches=True)
    assert len(caches) == len(net.layers)
    assert "x" in caches[0]  # Dense STE cache
    # Gradients flow through the caches.
    from repro.nn import cross_entropy_loss

    _, dlogits = cross_entropy_loss(logits, np.zeros(8, dtype=int))
    grads = net.backward(dlogits, caches)
    assert grads[0]["W"].shape == net.layers[0].params["W"].shape
    assert np.isfinite(grads[0]["W"]).all()
