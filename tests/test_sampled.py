"""Sampled evaluation: estimators, CIs, engine parity, wide operands."""

import subprocess
import sys

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    COMPONENTS,
    EvolutionConfig,
    SampleSpec,
    component_objective,
    evolve,
    netlist_to_chromosome,
    sampled_component_objective,
)
from repro.core.mutation import mutate
from repro.core.objective import (
    SampledEvalResult,
    SampledObjective,
    draw_sampled_stimulus,
)
from repro.engine import CompiledObjective, CompiledSampledObjective
from repro.errors.distributions import (
    distribution_from_spec,
    paper_d2,
    uniform,
)
from repro.errors.metrics import (
    estimate_from_distances,
    get_metric,
    metric_names,
    t_critical,
)

WIDTH = 8
SPEC = SampleSpec(samples=2048, replicates=8, seed=13)


def _mutant(width=WIDTH, signed=False, steps=8, seed=3, component="multiplier"):
    """A deterministically mutated (imperfect) candidate circuit."""
    chrom = netlist_to_chromosome(
        COMPONENTS[component].build_seed(width, signed)
    )
    rng = np.random.default_rng(seed)
    for _ in range(steps):
        chrom, _ = mutate(chrom, 4, rng)
    return chrom


@pytest.fixture(scope="module")
def mutant():
    return _mutant()


# ----------------------------------------------------------------------
# Estimator correctness at exhaustive widths
# ----------------------------------------------------------------------
@pytest.mark.parametrize("metric", metric_names())
def test_sampled_estimate_covers_exhaustive(metric, mutant):
    """Acceptance: width-8 sampled value agrees with the exhaustive one
    within the reported 95 % CI, for every metric."""
    dist = paper_d2(WIDTH)
    true = component_objective("multiplier", WIDTH, dist, metric=metric).error(
        mutant
    )
    est = sampled_component_objective(
        "multiplier", WIDTH, dist, SPEC, metric=metric
    ).estimate(mutant)
    assert est.ci_low <= true <= est.ci_high
    assert est.covers(true)
    if metric != "worst-case":
        # Point estimates should also be in the right ballpark, not just
        # inside a (possibly huge) interval.
        assert est.value == pytest.approx(true, rel=0.25, abs=1e-4)


def test_ci_coverage_over_seeded_replicates(mutant):
    """~95 % of seeded sample draws must cover the exhaustive truth."""
    dist = paper_d2(WIDTH)
    true = component_objective("multiplier", WIDTH, dist).error(mutant)
    covered = 0
    n_trials = 40
    for seed in range(n_trials):
        est = sampled_component_objective(
            "multiplier", WIDTH, dist,
            SampleSpec(samples=512, replicates=6, seed=seed),
        ).estimate(mutant)
        covered += est.ci_low <= true <= est.ci_high
    # Binomial(40, 0.95) puts ~99.9 % of its mass at >= 34.
    assert covered >= 34


def test_stderr_shrinks_with_samples(mutant):
    dist = paper_d2(WIDTH)
    widths = []
    for samples in (256, 1024, 4096):
        est = sampled_component_objective(
            "multiplier", WIDTH, dist,
            SampleSpec(samples=samples, replicates=8, seed=5),
        ).estimate(mutant)
        widths.append(est.ci_half_width)
    assert widths[0] > widths[1] > widths[2]


def test_exact_seed_estimates_zero():
    dist = paper_d2(WIDTH)
    exact = netlist_to_chromosome(
        COMPONENTS["multiplier"].build_seed(WIDTH, False)
    )
    for metric in metric_names():
        est = sampled_component_objective(
            "multiplier", WIDTH, dist, SPEC, metric=metric
        ).estimate(exact)
        assert est.value == 0.0
        assert est.ci_low == 0.0


@settings(max_examples=20, deadline=None)
@given(
    samples=st.integers(min_value=16, max_value=256),
    replicates=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=2**31),
    metric=st.sampled_from(("wmed", "med", "mred", "error-rate")),
)
def test_pooled_estimate_is_mean_of_replicates(samples, replicates, seed, metric):
    """Algebraic identity: for the linear metrics the pooled estimate
    equals the mean of the per-replicate estimates (convergence of the
    replicate machinery to the plain sample mean)."""
    rng = np.random.default_rng(seed)
    n = samples * replicates
    distances = rng.integers(0, 1000, size=n).astype(np.float64)
    reference = rng.integers(1, 1000, size=n)
    m = get_metric(metric)
    est = estimate_from_distances(m, distances, 999.0, reference, replicates)
    per_rep = [
        m.from_distances(
            distances[r * samples : (r + 1) * samples],
            np.full(samples, 1.0 / samples),
            999.0,
            reference[r * samples : (r + 1) * samples],
        )
        for r in range(replicates)
    ]
    assert est.value == pytest.approx(float(np.mean(per_rep)), rel=1e-12)
    if replicates >= 2:
        stderr = float(np.std(per_rep, ddof=1) / np.sqrt(replicates))
        assert est.stderr == pytest.approx(stderr, rel=1e-12)
        assert est.ci_high - est.value == pytest.approx(
            t_critical(replicates - 1) * stderr, rel=1e-12
        )


def test_worst_case_interval_is_lower_bound():
    est = estimate_from_distances(
        get_metric("worst-case"),
        np.array([1.0, 5.0, 3.0, 2.0]),
        10.0,
        np.ones(4, dtype=np.int64),
        2,
    )
    assert est.value == 0.5
    assert est.ci_low == 0.5
    assert est.ci_high == float("inf")


# ----------------------------------------------------------------------
# Stream discipline
# ----------------------------------------------------------------------
def test_stimulus_reproducible_and_replicate_blocked():
    dist = paper_d2(WIDTH)
    a = draw_sampled_stimulus(dist, 16, SPEC)
    b = draw_sampled_stimulus(dist, 16, SPEC)
    assert np.array_equal(a.vectors, b.vectors)
    assert np.array_equal(a.stimulus, b.stimulus)
    # Replicate r's block must equal a solo draw of stream r's prefix:
    # streams come from SeedSequence(seed).spawn(replicates).
    children = np.random.SeedSequence(SPEC.seed).spawn(SPEC.replicates)
    rng = np.random.default_rng(children[2])
    x = dist.sample_patterns(SPEC.samples, rng)
    block = a.vectors[2 * SPEC.samples : 3 * SPEC.samples]
    assert np.array_equal(block & np.uint64((1 << WIDTH) - 1), x)


def test_uniform_law_for_unweighted_metrics():
    dist = paper_d2(WIDTH)
    for metric, expect_dist in (
        ("wmed", True), ("mred", True), ("error-rate", True),
        ("med", False), ("worst-case", False),
    ):
        obj = sampled_component_objective(
            "multiplier", WIDTH, dist, SPEC, metric=metric
        )
        assert (obj.sampling_dist is dist) == expect_dist


# ----------------------------------------------------------------------
# Engine parity and cache identity
# ----------------------------------------------------------------------
@pytest.mark.parametrize("metric", ("wmed", "mred", "worst-case"))
def test_backends_bit_identical(metric, mutant):
    dist = paper_d2(WIDTH)
    spec = SampleSpec(samples=1024, replicates=4, seed=9)

    def build(backend):
        obj = sampled_component_objective(
            "multiplier", WIDTH, dist, spec, metric=metric
        )
        if backend == "off":
            return obj
        return CompiledSampledObjective(obj, backend=backend)

    candidates = [_mutant(steps=k + 1, seed=11) for k in range(6)]
    interp = [build("off").evaluate(c, 0.01) for c in candidates]
    numpy_r = build("numpy").evaluate_batch(candidates, 0.01)
    engines = [interp, numpy_r]
    from repro.engine import native_available

    if native_available():
        nat = build("native")
        engines.append([nat.evaluate(c, 0.01) for c in candidates])
        engines.append(nat.evaluate_batch(candidates, 0.01))
    for other in engines[1:]:
        for a, b in zip(engines[0], other):
            assert isinstance(b, SampledEvalResult)
            assert (a.wmed, a.area, a.ci_low, a.ci_high) == (
                b.wmed, b.area, b.ci_low, b.ci_high
            )


def test_cache_key_separates_sample_specs(mutant):
    dist = paper_d2(WIDTH)
    s1 = CompiledSampledObjective(
        sampled_component_objective(
            "multiplier", WIDTH, dist, SampleSpec(256, 2, seed=1)
        ),
        backend="numpy",
    )
    s2 = CompiledSampledObjective(
        sampled_component_objective(
            "multiplier", WIDTH, dist, SampleSpec(256, 2, seed=2)
        ),
        backend="numpy",
    )
    exhaustive = CompiledObjective(
        component_objective("multiplier", WIDTH, dist), backend="numpy"
    )
    salts = {
        s1._objective_salt, s2._objective_salt, exhaustive._objective_salt
    }
    assert len(salts) == 3
    # And the cache actually round-trips the four-tuple.
    r1 = s1.evaluate(mutant, 0.01)
    assert s1.cache.hits == 0
    r2 = s1.evaluate(mutant, 0.01)
    assert s1.cache.hits == 1
    assert (r1.wmed, r1.area, r1.ci_low, r1.ci_high) == (
        r2.wmed, r2.area, r2.ci_low, r2.ci_high
    )


def test_fast_reduce_disabled_for_sampled():
    # Uniform weights would make wmed eligible for the integer fast
    # path, but sampled mode must keep the distance row for the CI.
    obj = CompiledSampledObjective(
        sampled_component_objective(
            "multiplier", WIDTH, uniform(WIDTH), SampleSpec(256, 2, seed=0)
        )
    )
    assert obj.stats()["fast_reduce"] is None


# ----------------------------------------------------------------------
# Components: closed-form per-vector references
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", tuple(COMPONENTS))
def test_reference_at_matches_table(name):
    comp = COMPONENTS[name]
    for width in ((2, 3) if name == "mac" else (2, 5)):
        for signed in (False, True) if comp.supports_signed else (False,):
            table = comp.reference(width, signed)
            v = np.arange(1 << comp.num_inputs(width), dtype=np.uint64)
            assert np.array_equal(comp.reference_at(width, signed, v), table)
            assert comp.max_abs_reference(width, signed) == int(
                np.abs(table).max()
            )


def test_sampled_width_guards():
    with pytest.raises(ValueError, match="width <= 15"):
        COMPONENTS["mac"].check_sampled_width(16)
    with pytest.raises(ValueError, match="width <= 31"):
        COMPONENTS["multiplier"].check_sampled_width(32)
    COMPONENTS["multiplier"].check_sampled_width(31)
    with pytest.raises(ValueError):
        sampled_component_objective(
            "adder", WIDTH, uniform(WIDTH, signed=True), SPEC
        )


# ----------------------------------------------------------------------
# Wide operands
# ----------------------------------------------------------------------
def test_width16_sampled_evolve_smoke():
    """Acceptance: a width-16 sampled multiplier evolve completes and
    returns CI-carrying results (exhaustive would need 2**32 vectors)."""
    dist = paper_d2(16)
    obj = CompiledSampledObjective(
        sampled_component_objective(
            "multiplier", 16, dist, SampleSpec(samples=256, replicates=2, seed=0)
        )
    )
    seed = netlist_to_chromosome(COMPONENTS["multiplier"].build_seed(16, False))
    result = evolve(
        seed, obj, threshold=0.01,
        config=EvolutionConfig(generations=30),
        rng=np.random.default_rng(0),
    )
    assert isinstance(result.best_eval, SampledEvalResult)
    assert result.best_eval.wmed <= 0.01
    assert result.best_eval.ci_low <= result.best_eval.wmed


def test_wide_distribution_sampled_objective():
    d = distribution_from_spec("normal:2000000:300000", 24, False)
    obj = sampled_component_objective(
        "subtractor", 24, d, SampleSpec(samples=128, replicates=2, seed=4)
    )
    exact = netlist_to_chromosome(
        COMPONENTS["subtractor"].build_seed(24, False)
    )
    est = obj.estimate(exact)
    assert est.value == 0.0
    assert obj.normalizer == (1 << 25) - 1


def test_sampled_sweep_characterization():
    from repro.analysis.sweep import evolve_front

    dist = paper_d2(12)
    pts = evolve_front(
        None, 12, dist, [2.0], [dist],
        config=EvolutionConfig(generations=25),
        rng=np.random.default_rng(1),
        sample=SampleSpec(samples=128, replicates=2, seed=0),
    )
    p = pts[0]
    assert p.wmed_by_dist["D2"] <= 0.05
    assert p.area > 0 and p.power_mw > 0
    assert len(p.table) == 256  # outputs at the sampled vectors


def test_cli_sampled_evolve(tmp_path):
    out = tmp_path / "w12.chrom"
    proc = subprocess.run(
        [
            sys.executable, "-m", "repro.cli", "evolve",
            "--width", "12", "--dist", "d2", "--unsigned",
            "--eval", "sampled", "--samples", "256", "--replicates", "2",
            "--wmed-percent", "1.0", "--generations", "30",
            "--output", str(out),
        ],
        capture_output=True, text=True,
    )
    assert proc.returncode == 0, proc.stderr
    assert out.exists()
    assert "ci95=[" in proc.stderr
    assert "samples=256x2" in proc.stderr
