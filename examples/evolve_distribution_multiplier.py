"""Case Study 1 (scaled): 8-bit multipliers driven by D1 / D2 / Du.

Evolves 8-bit unsigned approximate multipliers under the paper's three
distributions, cross-evaluates every result under all three WMED metrics
and prints the Fig. 3-style comparison plus a Fig. 4-style ASCII error
heat map.  Takes a few minutes with the default budget; raise
``GENERATIONS`` for closer-to-paper results.

Usage::

    python examples/evolve_distribution_multiplier.py
"""

import numpy as np

from repro.analysis import (
    error_heatmap,
    evolve_front,
    format_table,
    render_ascii,
)
from repro.circuits.generators import build_array_multiplier
from repro.core import EvolutionConfig
from repro.errors import paper_d1, paper_d2, uniform

WIDTH = 8
TARGETS_PERCENT = [0.1, 1.0]
GENERATIONS = 3000


def main() -> None:
    seed = build_array_multiplier(WIDTH)
    d1, d2 = paper_d1(WIDTH), paper_d2(WIDTH)
    du = uniform(WIDTH, name="Du")
    dists = [d1, d2, du]
    config = EvolutionConfig(generations=GENERATIONS)

    all_points = []
    for dist in dists:
        print(f"evolving under {dist.name} ...")
        all_points += evolve_front(
            seed,
            WIDTH,
            design_dist=dist,
            thresholds_percent=TARGETS_PERCENT,
            eval_dists=dists,
            config=config,
            rng=np.random.default_rng(42),
        )

    rows = [
        [
            p.source,
            p.threshold_percent,
            p.wmed_percent("D1"),
            p.wmed_percent("D2"),
            p.wmed_percent("Du"),
            p.power_mw,
            p.area,
        ]
        for p in all_points
    ]
    print(
        format_table(
            ["evolved for", "target %", "WMED_D1 %", "WMED_D2 %",
             "WMED_Du %", "power mW", "area um2"],
            rows,
            title="\nCross-evaluation of evolved multipliers (Fig. 3 flow)",
        )
    )

    deep = all_points[len(TARGETS_PERCENT) - 1]  # deepest D1-driven design
    print(f"\nError heat map of {deep.name} (x -> rows, y -> columns);")
    print("D1 concentrates probability mid-range, so errors should avoid the")
    print("middle rows:\n")
    print(render_ascii(error_heatmap(deep.table, WIDTH, signed=False), bins=32))


if __name__ == "__main__":
    main()
