"""Case Study 2 (scaled): approximate MAC units for a neural classifier.

The full paper flow on the MLP/MNIST-like task:

1. train the 784-300-10 MLP on synthetic digits,
2. quantize it to 8-bit fixed point (Ristretto-style calibration),
3. measure the distribution of quantized weights across all layers,
4. evolve an 8-bit signed multiplier with WMED driven by that
   distribution,
5. run the network with the approximate multiplier (LUT-backed MACs),
6. fine-tune the network around the approximation and re-measure.

Usage::

    python examples/approximate_cnn_mac.py
"""

import numpy as np

from repro.analysis import format_pmf_sparkline, format_table
from repro.circuits.generators import build_baugh_wooley_multiplier
from repro.core import (
    EvolutionConfig,
    MultiplierFitness,
    evolve,
    netlist_to_chromosome,
    params_for_netlist,
)
from repro.errors import table_as_matrix
from repro.nn import (
    QuantizedModel,
    build_mlp,
    finetune,
    mnist_like,
    train,
    weight_distribution,
)
from repro.tech import characterize

WIDTH = 8
WMED_TARGET_PERCENT = 2.0
GENERATIONS = 4000
TRAIN, TEST = 6000, 1500


def main() -> None:
    rng = np.random.default_rng(3)
    x, y = mnist_like(TRAIN + TEST, rng)
    x = x.reshape(len(x), -1)
    train_x, train_y = x[:TRAIN], y[:TRAIN]
    test_x, test_y = x[TRAIN:], y[TRAIN:]

    print("training the MLP ...")
    network = build_mlp(rng=np.random.default_rng(0))
    train(network, train_x, train_y, epochs=8, lr=0.1, lr_decay=0.9, rng=rng)

    model = QuantizedModel(network, train_x[:256])
    dist = weight_distribution(model.quants, name="mlp-weights")
    print("\nquantized weight distribution across all layers (Fig. 6 top):")
    print("  " + format_pmf_sparkline(np.roll(dist.pmf, 128), bins=64))
    print("  (axis: -128 ... 0 ... +127; note the zero-centered peak)")

    print(f"\nevolving an approximate multiplier at WMED <= "
          f"{WMED_TARGET_PERCENT}% under that distribution ...")
    seed = build_baugh_wooley_multiplier(WIDTH)
    chromosome = netlist_to_chromosome(
        seed, params_for_netlist(seed, extra_columns=20)
    )
    evaluator = MultiplierFitness(WIDTH, dist)
    result = evolve(
        chromosome,
        evaluator,
        threshold=WMED_TARGET_PERCENT / 100.0,
        config=EvolutionConfig(generations=GENERATIONS),
        rng=np.random.default_rng(11),
    )
    approx = result.best.to_netlist(name="evolved-mac-core")
    lut = table_as_matrix(evaluator.truth_table(result.best), WIDTH)

    exact_summary = characterize(seed)
    approx_summary = characterize(approx)

    acc_exact = model.accuracy(test_x, test_y)
    acc_before = model.accuracy(test_x, test_y, lut=lut)
    print("fine-tuning around the approximate multiplier ...")
    finetune(model, train_x, train_y, lut=lut, steps=150, lr=0.02,
             rng=np.random.default_rng(5))
    acc_after = model.accuracy(test_x, test_y, lut=lut)

    def rel(a, b):
        return 100.0 * (a / b - 1.0)

    rows = [
        ["accuracy (exact int8)", f"{100 * acc_exact:.2f} %", ""],
        ["accuracy (approx, initial)", f"{100 * acc_before:.2f} %",
         f"{100 * (acc_before - acc_exact):+.2f} %"],
        ["accuracy (approx, fine-tuned)", f"{100 * acc_after:.2f} %",
         f"{100 * (acc_after - acc_exact):+.2f} %"],
        ["multiplier power", f"{approx_summary.power.total / 1000:.3f} mW",
         f"{rel(approx_summary.power.total, exact_summary.power.total):+.1f} %"],
        ["multiplier area", f"{approx_summary.area:.0f} um2",
         f"{rel(approx_summary.area, exact_summary.area):+.1f} %"],
        ["multiplier PDP", f"{approx_summary.pdp:.1f} fJ",
         f"{rel(approx_summary.pdp, exact_summary.pdp):+.1f} %"],
    ]
    print(
        format_table(
            ["figure", "value", "vs exact"],
            rows,
            title="\nTable I flow at one WMED level",
        )
    )


if __name__ == "__main__":
    main()
