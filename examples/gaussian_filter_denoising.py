"""Case Study 1 application: approximate Gaussian filter denoising (Fig. 5).

Builds approximate multipliers (a truncation sweep plus one multiplier
evolved for the D2 distribution), drops each into the 3x3 integer
Gaussian filter, and reports average PSNR against the exactly filtered
reference over a noisy synthetic image set, next to the estimated power
of the complete filter datapath.

Usage::

    python examples/gaussian_filter_denoising.py
"""

import numpy as np

from repro.analysis import format_table
from repro.baselines import build_truncated_multiplier
from repro.circuits.generators import build_array_multiplier
from repro.circuits.simulator import truth_table
from repro.core import (
    EvolutionConfig,
    MultiplierFitness,
    evolve,
    netlist_to_chromosome,
    params_for_netlist,
)
from repro.errors import paper_d2, table_as_matrix
from repro.imaging import (
    add_gaussian_noise,
    average_psnr,
    estimate_filter_power,
    filter_image,
    filter_image_lut,
    standard_image_suite,
)

WIDTH = 8
NOISE_SIGMA = 12.0
GENERATIONS = 4000
WMED_TARGET = 0.003  # 0.3 % under D2


def evolve_d2_multiplier():
    seed = build_array_multiplier(WIDTH)
    chromosome = netlist_to_chromosome(
        seed, params_for_netlist(seed, extra_columns=20)
    )
    evaluator = MultiplierFitness(WIDTH, paper_d2(WIDTH))
    result = evolve(
        chromosome,
        evaluator,
        threshold=WMED_TARGET,
        config=EvolutionConfig(generations=GENERATIONS),
        rng=np.random.default_rng(7),
    )
    return result.best.to_netlist(name="evolved-D2")


def main() -> None:
    images = standard_image_suite(25, size=64)
    rng = np.random.default_rng(1)
    noisy = [add_gaussian_noise(im, NOISE_SIGMA, rng) for im in images]
    reference = [filter_image(im) for im in noisy]

    candidates = [
        build_truncated_multiplier(WIDTH, k, signed=False) for k in (0, 2, 4, 6)
    ]
    print(f"evolving a D2-driven multiplier ({GENERATIONS} generations) ...")
    candidates.append(evolve_d2_multiplier())

    rows = []
    for net in candidates:
        lut = table_as_matrix(truth_table(net), WIDTH)
        filtered = [filter_image_lut(im, lut) for im in noisy]
        rows.append(
            [
                net.name,
                average_psnr(reference, filtered),
                estimate_filter_power(net) / 1000.0,
            ]
        )
    print(
        format_table(
            ["multiplier", "avg PSNR dB (vs exact filter)", "filter power mW"],
            rows,
            title="\nApproximate Gaussian filter quality vs power (Fig. 5 flow)",
        )
    )
    print(
        "\nThe D2-evolved multiplier should sit above the truncation curve:\n"
        "similar power, higher PSNR — because the filter's coefficients are\n"
        "small values, exactly where D2 forces accuracy."
    )


if __name__ == "__main__":
    main()
