"""Beyond multipliers: WMED-driven approximation of an adder.

The paper presents the method on multipliers, but nothing in it is
multiplier-specific.  This example approximates an 8-bit ripple-carry
adder whose x operand follows a half-normal distribution (small addends
dominate), using the objective layer (:func:`repro.core.adder_objective`
routed through the compiled engine), and compares the result against the
classic manual approximations (truncated adder, lower-part OR adder) at
matched error.

Usage::

    python examples/approximate_adder.py
"""

import numpy as np

from repro.analysis import format_table
from repro.baselines import build_lower_part_or_adder, build_truncated_adder
from repro.circuits.generators import build_ripple_carry_adder
from repro.circuits.simulator import truth_table
from repro.circuits.verify import reference_sums
from repro.core import (
    EvolutionConfig,
    adder_objective,
    evolve,
    netlist_to_chromosome,
    params_for_netlist,
)
from repro.engine import CompiledObjective
from repro.errors import discretized_half_normal, mean_error_distance
from repro.errors.truth_tables import vector_weights
from repro.tech import characterize

WIDTH = 8
TARGET = 0.004  # normalized weighted error budget
GENERATIONS = 3000


def main() -> None:
    reference = reference_sums(WIDTH, signed=False)
    dist = discretized_half_normal(WIDTH, sigma=40, signed=False, name="Dadd")
    weights = vector_weights(dist, WIDTH)

    seed_net = build_ripple_carry_adder(WIDTH)
    seed = netlist_to_chromosome(
        seed_net, params_for_netlist(seed_net, extra_columns=15)
    )
    # The adder objective through the compiled engine — bit-identical to
    # the interpreted path, just faster.
    evaluator = CompiledObjective(adder_objective(WIDTH, dist))
    print(f"evolving an approximate {WIDTH}-bit adder "
          f"({GENERATIONS} generations) ...")
    result = evolve(
        seed,
        evaluator,
        threshold=TARGET,
        config=EvolutionConfig(generations=GENERATIONS),
        rng=np.random.default_rng(1),
    )
    evolved = result.best.to_netlist(name="evolved-adder")

    rows = []
    for net in (
        seed_net,
        evolved,
        build_truncated_adder(WIDTH, 3),
        build_lower_part_or_adder(WIDTH, 3),
    ):
        table = truth_table(net)
        med_weighted = mean_error_distance(reference, table, weights)
        summary = characterize(net)
        rows.append(
            [net.name, med_weighted, summary.area, summary.power.total / 1000]
        )
    print(
        format_table(
            ["adder", "weighted MED", "area um2", "power mW"],
            rows,
            title="\nWMED-driven adder vs manual approximations "
            f"(error budget {TARGET * 100:g} % of max sum)",
        )
    )


if __name__ == "__main__":
    main()
