"""Quickstart: evolve a data-distribution-driven approximate multiplier.

Runs in a few seconds: a 4-bit signed multiplier is approximated under a
half-normal operand distribution (small |x| values dominate, like NN
weights), then compared against the same search driven by the uniform
distribution.

Usage::

    python examples/quickstart.py
"""

import numpy as np

from repro.analysis import evolve_front, format_table
from repro.circuits.generators import build_baugh_wooley_multiplier
from repro.core import EvolutionConfig
from repro.errors import discretized_half_normal, uniform

WIDTH = 4
TARGETS_PERCENT = [0.5, 2.0, 8.0]


def main() -> None:
    seed = build_baugh_wooley_multiplier(WIDTH)
    d_data = discretized_half_normal(WIDTH, sigma=2.5, signed=True, name="Ddata")
    d_uniform = uniform(WIDTH, signed=True)
    config = EvolutionConfig(generations=1500)

    print(f"Seed: exact {WIDTH}-bit signed multiplier, {len(seed.gates)} gates")
    rows = []
    for dist in (d_data, d_uniform):
        points = evolve_front(
            seed,
            WIDTH,
            design_dist=dist,
            thresholds_percent=TARGETS_PERCENT,
            eval_dists=[d_data, d_uniform],
            config=config,
            rng=np.random.default_rng(2019),
        )
        for point in points:
            rows.append(
                [
                    point.source,
                    point.threshold_percent,
                    point.wmed_percent("Ddata"),
                    point.wmed_percent("Du"),
                    point.area,
                    point.power_mw,
                ]
            )

    print(
        format_table(
            [
                "evolved for",
                "target %",
                "WMED_Ddata %",
                "WMED_Du %",
                "area um2",
                "power mW",
            ],
            rows,
            title="\nEvolved approximate multipliers (lower area at equal "
            "target = better)",
        )
    )
    print(
        "\nReading the table: multipliers evolved for Ddata exploit the "
        "distribution\n(low WMED_Ddata, possibly high WMED_Du) and reach "
        "smaller area than the\nuniform-driven ones at the same target."
    )


if __name__ == "__main__":
    main()
