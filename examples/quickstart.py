"""Quickstart: evolve a data-distribution-driven approximate multiplier.

Runs in under a minute: a 4-bit signed multiplier is approximated under
a half-normal operand distribution (small |x| values dominate, like NN
weights), then compared against the same search driven by the uniform
distribution.

Everything goes through the post-PR-2 objective layer: the sweep
builds a :class:`repro.core.objective.CircuitObjective` per run from
``component=`` + ``metric=`` (the deprecated ``MultiplierFitness``
path is gone from new code), and candidate evaluation runs on the
compiled engine by default.

Usage::

    python examples/quickstart.py

Next steps once this runs: persist a whole grid of such designs with
``python -m repro.cli library build`` and serve them over HTTP with
``python -m repro.cli serve`` (see docs/serving.md).
"""

import numpy as np

from repro.analysis import evolve_front, format_table
from repro.core import EvolutionConfig
from repro.core.components import COMPONENTS
from repro.errors import discretized_half_normal, uniform

WIDTH = 4
TARGETS_PERCENT = [0.5, 2.0, 8.0]
GENERATIONS = 1500


def main() -> None:
    # The component registry owns the exact seed circuit; the same
    # call with "adder" or "mac" runs the identical flow for those
    # blocks (CLI: repro evolve --component adder --metric med ...).
    component = COMPONENTS["multiplier"]
    seed = component.build_seed(WIDTH, signed=True)
    d_data = discretized_half_normal(WIDTH, sigma=2.5, signed=True, name="Ddata")
    d_uniform = uniform(WIDTH, signed=True)

    print(f"Seed: exact {WIDTH}-bit signed multiplier, {len(seed.gates)} gates")
    rows = []
    for dist in (d_data, d_uniform):
        points = evolve_front(
            seed,
            WIDTH,
            design_dist=dist,
            thresholds_percent=TARGETS_PERCENT,
            eval_dists=[d_data, d_uniform],
            component="multiplier",
            metric="wmed",
            config=EvolutionConfig(generations=GENERATIONS),
            rng=np.random.default_rng(2019),
        )
        for point in points:
            rows.append(
                [
                    point.source,
                    point.threshold_percent,
                    point.wmed_percent("Ddata"),
                    point.wmed_percent("Du"),
                    point.area,
                    point.power_mw,
                ]
            )

    print(
        format_table(
            [
                "evolved for",
                "target %",
                "WMED_Ddata %",
                "WMED_Du %",
                "area um2",
                "power mW",
            ],
            rows,
            title="\nEvolved approximate multipliers (lower area at equal "
            "target = better)",
        )
    )
    print(
        "\nReading the table: multipliers evolved for Ddata exploit the "
        "distribution\n(low WMED_Ddata, possibly high WMED_Du) and reach "
        "smaller area than the\nuniform-driven ones at the same target."
    )


if __name__ == "__main__":
    main()
