#!/usr/bin/env python
"""Docs drift gate: verify README/docs code fences against the code.

Documentation rots in predictable ways: a snippet imports a name that
was renamed, a CLI example uses a flag that no longer exists, a curl
example hits an endpoint that was never wired up.  This script walks
every fenced code block in ``README.md`` and ``docs/*.md`` and checks
each kind against the live implementation:

* ``python`` fences — must compile, and every ``import``/``from`` of a
  ``repro`` module must resolve (module imports, names exist).  This is
  what catches "the README still says ``MultiplierFitness``".
* ``bash`` fences — every ``python -m repro.cli …`` invocation is
  parsed by the *real* argparse parser (commands and flags must exist;
  nothing is executed); ``python -m repro.x.y`` modules must import;
  ``python path/to/script.py`` scripts must exist on disk.
* ``json`` fences — must be valid JSON (example responses stay
  copy-pasteable).
* curl lines (any fence) — the URL path must match a route in the
  serving layer's route table, and every query parameter must be one
  the route declares.

Run from the repo root (CI does, as does ``tests/test_docs.py``)::

    python docs/check_docs.py            # exit 1 on any drift
    python docs/check_docs.py --list     # show every checked fence
"""

from __future__ import annotations

import argparse
import ast
import glob
import importlib
import io
import json
import os
import re
import shlex
import sys
from contextlib import redirect_stderr, redirect_stdout
from typing import List, Tuple
from urllib.parse import parse_qsl, urlsplit

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

_FENCE = re.compile(r"^```(\w*)\n(.*?)^```$", re.MULTILINE | re.DOTALL)
_PLACEHOLDER = re.compile(r"^<[^>]+>$")


def extract_fences(path: str) -> List[Tuple[str, str, int]]:
    """``(language, body, line_number)`` for every fence in a file."""
    text = open(path).read()
    fences = []
    for found in _FENCE.finditer(text):
        line = text[: found.start()].count("\n") + 1
        fences.append((found.group(1).lower(), found.group(2), line))
    return fences


# ----------------------------------------------------------------------
# Python fences: compile + resolve repro imports
# ----------------------------------------------------------------------
def check_python(body: str, where: str, errors: List[str]) -> None:
    try:
        tree = ast.parse(body)
    except SyntaxError as exc:
        errors.append(f"{where}: python fence does not parse: {exc}")
        return
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            names = [(alias.name, None) for alias in node.names]
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            names = [(node.module, alias.name) for alias in node.names]
        else:
            continue
        for module, attr in names:
            if not module or module.split(".")[0] != "repro":
                continue
            try:
                mod = importlib.import_module(module)
            except Exception as exc:  # noqa: BLE001 - reported, not raised
                errors.append(f"{where}: cannot import {module}: {exc}")
                continue
            if attr and attr != "*" and not hasattr(mod, attr):
                errors.append(
                    f"{where}: {module} has no attribute {attr!r}"
                )


# ----------------------------------------------------------------------
# Bash fences: CLI invocations must parse, scripts must exist
# ----------------------------------------------------------------------
def _logical_lines(body: str) -> List[str]:
    """Join backslash continuations, drop comments and blanks."""
    lines: List[str] = []
    pending = ""
    for raw in body.splitlines():
        stripped = raw.strip()
        if pending:
            pending = pending + " " + stripped.rstrip("\\").strip()
        else:
            if not stripped or stripped.startswith("#"):
                continue
            pending = stripped.rstrip("\\").strip()
        if not raw.rstrip().endswith("\\"):
            lines.append(pending)
            pending = ""
    if pending:
        lines.append(pending)
    return lines


def _parse_cli(argv: List[str], where: str, errors: List[str]) -> None:
    from repro.cli import _build_parser

    argv = ["x" if _PLACEHOLDER.match(a) else a for a in argv]
    parser = _build_parser()
    try:
        # parse_args only validates vocabulary; no command function runs.
        with redirect_stdout(io.StringIO()), redirect_stderr(io.StringIO()):
            parser.parse_args(argv)
    except SystemExit as exc:
        if exc.code not in (0, None):
            errors.append(
                f"{where}: `repro {' '.join(argv)}` does not parse "
                "against the live CLI"
            )


def check_bash(body: str, where: str, errors: List[str]) -> None:
    for line in _logical_lines(body):
        try:
            tokens = shlex.split(line)
        except ValueError as exc:
            errors.append(f"{where}: cannot tokenize {line!r}: {exc}")
            continue
        # Strip leading VAR=value environment assignments.
        while tokens and re.match(r"^[A-Za-z_][A-Za-z0-9_]*=", tokens[0]):
            tokens.pop(0)
        if not tokens:
            continue
        if tokens[0] == "curl":
            check_curl(tokens, where, errors)
            continue
        if tokens[0] not in ("python", "python3"):
            continue
        rest = tokens[1:]
        if rest[:1] == ["-m"]:
            module = rest[1] if len(rest) > 1 else ""
            if module == "repro.cli":
                _parse_cli(rest[2:], where, errors)
            elif module.split(".")[0] == "repro":
                try:
                    importlib.import_module(module)
                except Exception as exc:  # noqa: BLE001
                    errors.append(
                        f"{where}: cannot import -m module {module}: {exc}"
                    )
            continue
        if rest and rest[0].endswith(".py"):
            if not os.path.exists(os.path.join(REPO, rest[0])):
                errors.append(
                    f"{where}: script {rest[0]!r} does not exist"
                )


# ----------------------------------------------------------------------
# curl lines: URL path + query params must match the route table
# ----------------------------------------------------------------------
def check_curl(tokens: List[str], where: str, errors: List[str]) -> None:
    from repro.serve.api import ROUTES
    from repro.serve.routes import match_path

    urls = [t for t in tokens if t.startswith("http")]
    for url in urls:
        parts = urlsplit(url)
        route, _ = match_path(ROUTES, parts.path)
        if route is None:
            errors.append(
                f"{where}: curl path {parts.path!r} matches no serve route"
            )
            continue
        declared = {p.name for p in route.params}
        for name, _ in parse_qsl(parts.query, keep_blank_values=True):
            if name not in declared:
                errors.append(
                    f"{where}: curl query parameter {name!r} is not "
                    f"declared by {route.method} {route.path}"
                )


def check_json(body: str, where: str, errors: List[str]) -> None:
    try:
        json.loads(body)
    except ValueError as exc:
        errors.append(f"{where}: json fence is not valid JSON: {exc}")


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def doc_files() -> List[str]:
    files = [os.path.join(REPO, "README.md")]
    files += sorted(glob.glob(os.path.join(REPO, "docs", "*.md")))
    return files


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[1])
    parser.add_argument(
        "--list", action="store_true", help="print every checked fence"
    )
    args = parser.parse_args(argv)

    errors: List[str] = []
    checked = 0
    for path in doc_files():
        rel = os.path.relpath(path, REPO)
        for language, body, line in extract_fences(path):
            where = f"{rel}:{line}"
            if language == "python":
                check_python(body, where, errors)
            elif language in ("bash", "sh", "shell", "console"):
                check_bash(body, where, errors)
            elif language == "json":
                check_json(body, where, errors)
            else:
                continue
            checked += 1
            if args.list:
                print(f"checked {where} ({language})")

    if errors:
        for error in errors:
            print(f"DRIFT: {error}", file=sys.stderr)
        print(f"{len(errors)} problem(s) in {checked} fences",
              file=sys.stderr)
        return 1
    print(f"all {checked} documentation fences match the implementation")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
